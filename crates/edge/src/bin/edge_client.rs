//! Command-line client for the edge cache server.
//!
//! ```text
//! edge-client --addr HOST:PORT health
//! edge-client --addr HOST:PORT smoke      # one batched insert/lookup/gossip round-trip
//! edge-client --addr HOST:PORT snapshot   # prints compressed/decompressed sizes
//! edge-client --addr HOST:PORT shutdown
//! ```
//!
//! `smoke` is what `ci.sh` drives: it asserts the round-trip answered
//! every frame correctly and exits nonzero otherwise.

use std::process::ExitCode;

use features::FeatureVector;

use edge::{BatchRequest, EdgeClient, Frame, Reply};

fn key(components: Vec<f32>) -> Option<FeatureVector> {
    FeatureVector::from_vec(components).ok()
}

fn smoke(client: &EdgeClient) -> Result<(), String> {
    let k = key(vec![0.25, -0.5, 1.0, 0.125]).ok_or("key construction failed")?;
    let request = BatchRequest {
        device: 1,
        frames: vec![
            Frame::Insert {
                key: k.clone(),
                label: 42,
                confidence: 0.9,
            },
            Frame::Lookup { key: k.clone() },
            Frame::GossipAd {
                key: key(vec![9.0, 9.0, 9.0, 9.0]).ok_or("key construction failed")?,
                label: 7,
                confidence: 0.6,
            },
        ],
    };
    let response = client.batch(&request).map_err(|e| e.to_string())?;
    if response.replies.len() != 3 {
        return Err(format!(
            "expected 3 replies, got {}",
            response.replies.len()
        ));
    }
    if response.replies[0] != Reply::Accepted {
        return Err(format!("insert not accepted: {:?}", response.replies[0]));
    }
    match response.replies[1] {
        Reply::Hit(hit) if hit.label == 42 => {}
        other => return Err(format!("lookup did not hit label 42: {other:?}")),
    }
    if response.replies[2] != Reply::Accepted {
        return Err(format!("gossip ad not accepted: {:?}", response.replies[2]));
    }
    println!("smoke ok: insert accepted, lookup hit label 42, gossip accepted");
    Ok(())
}

fn run() -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut command: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(it.next().ok_or("--addr expects a value")?),
            other if command.is_none() => command = Some(other.to_string()),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    let addr = addr.ok_or("--addr HOST:PORT is required")?;
    let client = EdgeClient::new(addr);
    match command.as_deref() {
        Some("health") => {
            let line = client.health().map_err(|e| e.to_string())?;
            print!("{line}");
            Ok(())
        }
        Some("smoke") => smoke(&client),
        Some("snapshot") => {
            let blob = client.snapshot().map_err(|e| e.to_string())?;
            let plain = edge::decompress(&blob).map_err(|e| e.to_string())?;
            println!(
                "snapshot: {} bytes compressed, {} plain",
                blob.len(),
                plain.len()
            );
            Ok(())
        }
        Some("shutdown") => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server acknowledged shutdown");
            Ok(())
        }
        Some(other) => Err(format!("unknown command: {other}")),
        None => Err("missing command (health | smoke | snapshot | shutdown)".to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("edge-client: {e}");
            ExitCode::FAILURE
        }
    }
}
