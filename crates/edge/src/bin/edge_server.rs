//! The edge cache server binary.
//!
//! ```text
//! edge-server [--addr HOST:PORT] [--capacity N] [--queue-limit N]
//!             [--workers N] [--threshold F] [--allow-shutdown]
//! ```
//!
//! Binds (port `0` picks an ephemeral port), prints
//! `listening on <addr>` on stdout, and serves until killed — or, with
//! `--allow-shutdown`, until a client posts `/shutdown` (what the CI
//! smoke stage does to assert clean shutdown).

use std::process::ExitCode;

use edge::{EdgeCache, EdgeCacheConfig, EdgeServer, ServerConfig};

struct Args {
    addr: String,
    cache: EdgeCacheConfig,
    server: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        cache: EdgeCacheConfig::default(),
        server: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--capacity" => {
                args.cache.capacity = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
            }
            "--queue-limit" => {
                args.cache.queue_limit = value("--queue-limit")?
                    .parse()
                    .map_err(|e| format!("--queue-limit: {e}"))?;
            }
            "--workers" => {
                args.server.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--threshold" => {
                args.cache.distance_threshold = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
            }
            "--allow-shutdown" => args.server.allow_shutdown = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("edge-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cache = match EdgeCache::new(args.cache) {
        Ok(cache) => cache,
        Err(e) => {
            eprintln!("edge-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match EdgeServer::start(&args.addr, cache, args.server) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("edge-server: bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    server.wait();
    println!("edge-server: shut down cleanly");
    ExitCode::SUCCESS
}
