//! The edge cache: a shared [`reuse::SharedCache`] behind batched
//! operations with bounded-queue backpressure.
//!
//! One [`EdgeCache`] handle is cloned across every client of the tier —
//! simulated devices in one process, or worker threads of the real
//! `edge-server` binary. All mutation goes through
//! [`apply_batch`](EdgeCache::apply_batch), which admits a batch only
//! while the in-flight frame count stays under the configured queue
//! limit and otherwise rejects with [`Overloaded`] *immediately* — the
//! edge tier never blocks a mobile caller, because a device can always
//! fall back to local inference for less than the cost of waiting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use ann::AknnConfig;
use reuse::{CacheConfig, EntrySource, LookupResult, SharedCache};
use simcore::SimTime;

use crate::protocol::{BatchRequest, BatchResponse, EdgeHit, Frame, Reply};

/// Configuration of an [`EdgeCache`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeCacheConfig {
    /// Maximum cached entries.
    pub capacity: usize,
    /// A-kNN distance threshold for the hit test (edge deployments copy
    /// the calibrated device threshold).
    pub distance_threshold: f64,
    /// Most request frames allowed in flight at once; a batch that would
    /// exceed this is rejected with [`Overloaded`].
    pub queue_limit: usize,
}

impl Default for EdgeCacheConfig {
    fn default() -> Self {
        EdgeCacheConfig {
            capacity: 4_096,
            distance_threshold: 1.0,
            queue_limit: 1_024,
        }
    }
}

impl EdgeCacheConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.capacity == 0 {
            return Err("EdgeCacheConfig: capacity must be positive");
        }
        if !(self.distance_threshold > 0.0 && self.distance_threshold.is_finite()) {
            return Err("EdgeCacheConfig: distance_threshold must be positive and finite");
        }
        if self.queue_limit == 0 {
            return Err("EdgeCacheConfig: queue_limit must be positive");
        }
        Ok(())
    }
}

/// The typed rejection when a batch would exceed the queue limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded;

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "edge cache overloaded: queue limit exceeded")
    }
}

impl std::error::Error for Overloaded {}

/// Totals of everything the edge tier did, merged into `RunReport`.
///
/// The first six fields are recorded server-side by [`EdgeCache`]; the
/// last three are recorded device-side by the pipeline (a device counts
/// a query when it *sends* one — the server only sees the ones the WAN
/// delivered). A healthy run reconciles as
/// `hits_adopted ≤ hits ≤ lookups ≤ queries_sent`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeCounters {
    /// Batches the server accepted.
    pub batches: u64,
    /// Lookup frames the server processed.
    pub lookups: u64,
    /// Lookup frames that hit the edge cache.
    pub hits: u64,
    /// Insert frames applied.
    pub inserts: u64,
    /// Gossip-advertisement frames applied.
    pub gossip_entries: u64,
    /// Batches rejected with [`Overloaded`].
    pub overloads: u64,
    /// Lookup frames devices handed to the WAN (delivered or not).
    pub queries_sent: u64,
    /// Device-side exchanges the WAN lost (either leg).
    pub query_timeouts: u64,
    /// Edge hits a device adopted into its local cache.
    pub hits_adopted: u64,
}

impl EdgeCounters {
    /// Counts one accepted batch. The single increment site for
    /// `batches` (rule T: one `record_*` helper per field).
    pub fn record_batch(&mut self) {
        self.batches += 1;
    }

    /// Counts one processed lookup frame and, when it hit, the hit.
    pub fn record_lookup(&mut self, hit: bool) {
        self.lookups += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Counts one applied insert frame.
    pub fn record_insert(&mut self) {
        self.inserts += 1;
    }

    /// Counts one applied gossip-advertisement frame.
    pub fn record_gossip(&mut self) {
        self.gossip_entries += 1;
    }

    /// Counts one batch rejected for backpressure.
    pub fn record_overload(&mut self) {
        self.overloads += 1;
    }

    /// Counts lookup frames a device handed to the WAN.
    pub fn record_queries_sent(&mut self, lookups: u64) {
        self.queries_sent += lookups;
    }

    /// Counts one device-side exchange the WAN lost.
    pub fn record_query_timeout(&mut self) {
        self.query_timeouts += 1;
    }

    /// Counts one edge hit adopted into a device's local cache.
    pub fn record_hit_adopted(&mut self) {
        self.hits_adopted += 1;
    }

    /// Adds another counter block.
    pub fn merge(&mut self, other: &EdgeCounters) {
        self.batches += other.batches;
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.inserts += other.inserts;
        self.gossip_entries += other.gossip_entries;
        self.overloads += other.overloads;
        self.queries_sent += other.queries_sent;
        self.query_timeouts += other.query_timeouts;
        self.hits_adopted += other.hits_adopted;
    }

    /// True when the edge tier never ran (the serde skip predicate that
    /// keeps edge-free reports byte-identical to pre-edge goldens).
    pub fn is_idle(&self) -> bool {
        *self == EdgeCounters::default()
    }

    /// Whether the merged totals are mutually consistent (see the type
    /// docs for the inequality chain).
    pub fn reconciles(&self) -> bool {
        self.hits_adopted <= self.hits
            && self.hits <= self.lookups
            && self.lookups <= self.queries_sent
    }
}

impl std::fmt::Display for EdgeCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} batches ({} overloaded), {}/{} lookups hit, {} adopted, {} inserts, {} gossip, {} timeouts",
            self.batches,
            self.overloads,
            self.hits,
            self.lookups,
            self.hits_adopted,
            self.inserts,
            self.gossip_entries,
            self.query_timeouts,
        )
    }
}

/// A cloneable handle to the shared edge cache.
///
/// Lookups answer with the label, confidence and distance of the
/// nearest dominant-label entry; inserts and gossip ads feed the same
/// store with [`EntrySource::LocalInference`] / [`EntrySource::Peer`]
/// provenance respectively, so admission can distinguish first-party
/// results from relayed ones.
#[derive(Debug, Clone)]
pub struct EdgeCache {
    cache: SharedCache<u32>,
    counters: Arc<Mutex<EdgeCounters>>,
    in_flight: Arc<AtomicUsize>,
    queue_limit: usize,
}

impl EdgeCache {
    /// Builds the cache; rejects invalid configuration.
    pub fn new(config: EdgeCacheConfig) -> Result<EdgeCache, &'static str> {
        config.validate()?;
        let cache_config = CacheConfig::new(config.capacity).with_aknn(AknnConfig {
            distance_threshold: config.distance_threshold,
            ..AknnConfig::default()
        });
        Ok(EdgeCache {
            cache: SharedCache::new(cache_config),
            counters: Arc::new(Mutex::new(EdgeCounters::default())),
            in_flight: Arc::new(AtomicUsize::new(0)),
            queue_limit: config.queue_limit,
        })
    }

    /// Applies one batch, answering every frame in order, or rejects it
    /// outright when the in-flight frame count would exceed the queue
    /// limit. Never blocks: the caller decides whether to retry, shed,
    /// or fall back to local inference.
    pub fn apply_batch(
        &self,
        request: &BatchRequest,
        now: SimTime,
    ) -> Result<BatchResponse, Overloaded> {
        // An empty batch still occupies one queue slot: it costs a parse
        // and a reply, and a flood of them must still trip backpressure.
        let cost = request.frames.len().max(1);
        let before = self.in_flight.fetch_add(cost, Ordering::AcqRel);
        if before + cost > self.queue_limit {
            self.in_flight.fetch_sub(cost, Ordering::AcqRel);
            self.counters.lock().record_overload();
            return Err(Overloaded);
        }
        let mut replies = Vec::with_capacity(request.frames.len());
        {
            let mut counters = self.counters.lock();
            counters.record_batch();
            for frame in &request.frames {
                replies.push(self.apply_frame(frame, now, &mut counters));
            }
        }
        self.in_flight.fetch_sub(cost, Ordering::AcqRel);
        Ok(BatchResponse { replies })
    }

    fn apply_frame(&self, frame: &Frame, now: SimTime, counters: &mut EdgeCounters) -> Reply {
        match frame {
            Frame::Lookup { key } => match self.cache.lookup(key, now) {
                LookupResult::Hit {
                    label,
                    entry,
                    nearest_distance,
                    ..
                } => {
                    counters.record_lookup(true);
                    let confidence = self.cache.entry_confidence(entry).unwrap_or(0.5);
                    Reply::Hit(EdgeHit {
                        label,
                        confidence: confidence.clamp(0.0, 1.0),
                        distance: nearest_distance.max(0.0),
                    })
                }
                LookupResult::Miss(_) => {
                    counters.record_lookup(false);
                    Reply::Miss
                }
            },
            Frame::Insert {
                key,
                label,
                confidence,
            } => {
                counters.record_insert();
                self.cache.insert(
                    key.clone(),
                    *label,
                    confidence.clamp(0.0, 1.0),
                    EntrySource::LocalInference,
                    now,
                );
                Reply::Accepted
            }
            Frame::GossipAd {
                key,
                label,
                confidence,
            } => {
                counters.record_gossip();
                self.cache.insert(
                    key.clone(),
                    *label,
                    confidence.clamp(0.0, 1.0),
                    EntrySource::Peer,
                    now,
                );
                Reply::Accepted
            }
        }
    }

    /// Server-side counters so far.
    pub fn counters(&self) -> EdgeCounters {
        *self.counters.lock()
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Replaces the A-kNN distance threshold (used by the sim to copy
    /// the device-calibrated threshold onto the shared tier).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive and finite.
    pub fn set_distance_threshold(&self, threshold: f64) {
        self.cache.set_distance_threshold(threshold);
    }

    /// The compressed canonical snapshot of the cache contents — what
    /// `GET /snapshot` serves.
    pub fn snapshot_blob(&self, now: SimTime) -> Vec<u8> {
        let snapshot = self.cache.canonical_snapshot(now);
        let json = serde_json::to_string(&snapshot).unwrap_or_default();
        crate::compress::compress(json.as_bytes()).to_vec()
    }

    /// Restores entries from a [`snapshot_blob`](Self::snapshot_blob)
    /// through the normal insert path; returns how many were restored.
    pub fn restore_blob(&self, blob: &[u8], now: SimTime) -> Result<usize, String> {
        let json = crate::compress::decompress(blob).map_err(|e| e.to_string())?;
        let json = String::from_utf8(json).map_err(|e| e.to_string())?;
        let snapshot: reuse::CacheSnapshot<u32> =
            serde_json::from_str(&json).map_err(|e| e.to_string())?;
        Ok(self.cache.restore(&snapshot, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use features::FeatureVector;

    fn key(components: &[f32]) -> FeatureVector {
        FeatureVector::from_vec(components.to_vec()).unwrap()
    }

    fn cache_with_limit(queue_limit: usize) -> EdgeCache {
        EdgeCache::new(EdgeCacheConfig {
            capacity: 64,
            distance_threshold: 1.0,
            queue_limit,
        })
        .unwrap()
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(EdgeCacheConfig {
            capacity: 0,
            ..EdgeCacheConfig::default()
        }
        .validate()
        .is_err());
        assert!(EdgeCacheConfig {
            distance_threshold: f64::NAN,
            ..EdgeCacheConfig::default()
        }
        .validate()
        .is_err());
        assert!(EdgeCacheConfig {
            queue_limit: 0,
            ..EdgeCacheConfig::default()
        }
        .validate()
        .is_err());
        assert!(EdgeCacheConfig::default().validate().is_ok());
    }

    #[test]
    fn insert_then_lookup_hits_and_counts() {
        let edge = cache_with_limit(16);
        let req = BatchRequest {
            device: 1,
            frames: vec![
                Frame::Lookup {
                    key: key(&[0.0, 0.0]),
                },
                Frame::Insert {
                    key: key(&[0.0, 0.0]),
                    label: 9,
                    confidence: 0.9,
                },
                Frame::Lookup {
                    key: key(&[0.05, 0.0]),
                },
            ],
        };
        let resp = edge.apply_batch(&req, SimTime::ZERO).unwrap();
        assert_eq!(resp.replies.len(), 3);
        assert_eq!(resp.replies[0], Reply::Miss);
        assert_eq!(resp.replies[1], Reply::Accepted);
        match resp.replies[2] {
            Reply::Hit(hit) => {
                assert_eq!(hit.label, 9);
                assert!(hit.confidence > 0.8);
                assert!(hit.distance < 0.1);
            }
            other => panic!("expected a hit, got {other:?}"),
        }
        let c = edge.counters();
        assert_eq!(c.batches, 1);
        assert_eq!(c.lookups, 2);
        assert_eq!(c.hits, 1);
        assert_eq!(c.inserts, 1);
        assert_eq!(c.overloads, 0);
        assert!(!c.is_idle());
        assert!(c.hits <= c.lookups);
    }

    #[test]
    fn gossip_ads_land_with_peer_provenance() {
        let edge = cache_with_limit(16);
        let resp = edge
            .apply_batch(
                &BatchRequest {
                    device: 2,
                    frames: vec![Frame::GossipAd {
                        key: key(&[1.0, 1.0]),
                        label: 3,
                        confidence: 0.8,
                    }],
                },
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(resp.replies, vec![Reply::Accepted]);
        assert_eq!(edge.counters().gossip_entries, 1);
        assert_eq!(edge.len(), 1);
    }

    #[test]
    fn oversized_batch_is_rejected_not_blocked() {
        let edge = cache_with_limit(4);
        let frames: Vec<Frame> = (0..5)
            .map(|i| Frame::Lookup {
                key: key(&[i as f32, 0.0]),
            })
            .collect();
        let err = edge
            .apply_batch(&BatchRequest { device: 1, frames }, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, Overloaded);
        let c = edge.counters();
        assert_eq!(c.overloads, 1);
        assert_eq!(c.batches, 0, "rejected batches are not counted accepted");
        // The failed admission released its permits: a fitting batch
        // still goes through.
        let ok = edge.apply_batch(
            &BatchRequest {
                device: 1,
                frames: vec![Frame::Lookup {
                    key: key(&[0.0, 0.0]),
                }],
            },
            SimTime::ZERO,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn clones_share_contents_and_counters() {
        let edge = cache_with_limit(16);
        let other = edge.clone();
        edge.apply_batch(
            &BatchRequest {
                device: 1,
                frames: vec![Frame::Insert {
                    key: key(&[0.5, 0.5]),
                    label: 1,
                    confidence: 1.0,
                }],
            },
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(other.len(), 1);
        assert_eq!(other.counters().inserts, 1);
    }

    #[test]
    fn counters_merge_and_reconcile() {
        let mut total = EdgeCounters::default();
        assert!(total.is_idle());
        let mut server = EdgeCounters::default();
        server.record_batch();
        server.record_lookup(true);
        server.record_lookup(false);
        let mut device = EdgeCounters::default();
        device.record_queries_sent(3);
        device.record_query_timeout();
        device.record_hit_adopted();
        total.merge(&server);
        total.merge(&device);
        assert!(!total.is_idle());
        assert!(total.reconciles(), "{total}");
        assert_eq!(total.lookups, 2);
        assert_eq!(total.queries_sent, 3);
        // An impossible chain fails reconciliation.
        let mut bogus = EdgeCounters::default();
        bogus.record_lookup(true);
        assert!(!bogus.reconciles());
    }

    #[test]
    fn snapshot_blob_round_trips_through_a_cold_cache() {
        let warm = cache_with_limit(16);
        for i in 0..10u32 {
            warm.apply_batch(
                &BatchRequest {
                    device: 1,
                    frames: vec![Frame::Insert {
                        key: key(&[i as f32 * 10.0, 1.0]),
                        label: i,
                        confidence: 0.9,
                    }],
                },
                SimTime::ZERO,
            )
            .unwrap();
        }
        let blob = warm.snapshot_blob(SimTime::from_millis(5));
        let cold = cache_with_limit(16);
        let restored = cold.restore_blob(&blob, SimTime::from_millis(6)).unwrap();
        assert_eq!(restored, 10);
        assert_eq!(cold.len(), 10);
        // Garbage is rejected, not panicked on.
        assert!(cold.restore_blob(b"not a snapshot", SimTime::ZERO).is_err());
    }
}
