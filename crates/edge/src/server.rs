//! A hand-rolled threaded HTTP/1.1 server over `std::net::TcpListener`.
//!
//! Vendoring rules out axum/tokio, so the service half is a fixed worker
//! pool draining a *bounded* connection queue — the same explicit-
//! backpressure stance as [`EdgeCache`](crate::cache::EdgeCache): when
//! either the queue or the cache is full the server answers `503`
//! immediately instead of letting latency pile up invisibly.
//!
//! Routes:
//!
//! | route            | body                                   | answers |
//! |------------------|----------------------------------------|---------|
//! | `POST /batch`    | [`BatchRequest`] wire bytes            | `200` [`BatchResponse`] wire bytes, `400` on a codec error, `503` on overload |
//! | `GET /snapshot`  | —                                      | `200` compressed canonical snapshot |
//! | `GET /health`    | —                                      | `200` one-line counter summary |
//! | `POST /shutdown` | — (only with [`ServerConfig::allow_shutdown`]) | `200`, then the server drains and exits |
//!
//! Every connection gets read/write timeouts so one stalled client can
//! never wedge a worker, and each request/response cycle closes the
//! connection (`Connection: close`) — edge batches are coarse enough
//! that keep-alive would buy little and cost a slow-loris surface.
//!
//! This file (with `client.rs`) is the runtime half of the crate: it
//! touches the wall clock and real sockets, and is exempt from the
//! determinism lint the model half is held to.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use simcore::SimTime;

use crate::cache::EdgeCache;
use crate::protocol::BatchRequest;

/// Largest request body the server will read.
const MAX_BODY: usize = 8 * 1024 * 1024;
/// Largest request head (request line + headers) the server will read.
const MAX_HEAD: usize = 16 * 1024;

/// Tuning of an [`EdgeServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Connections allowed to wait for a worker before `503`.
    pub pending_limit: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Whether `POST /shutdown` is honoured (CI smoke runs enable it;
    /// a real deployment stops the process instead).
    pub allow_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            pending_limit: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            allow_shutdown: false,
        }
    }
}

/// A running edge server; dropping the handle shuts it down.
#[derive(Debug)]
pub struct EdgeServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl EdgeServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop plus the worker pool over `cache`.
    pub fn start(
        addr: &str,
        cache: EdgeCache,
        config: ServerConfig,
    ) -> std::io::Result<EdgeServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let started = Instant::now();

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.pending_limit.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let cache = cache.clone();
                let config = config.clone();
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || worker_loop(&rx, &cache, &config, &shutdown, started))
            })
            .collect();

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let config = config.clone();
            std::thread::spawn(move || accept_loop(&listener, &tx, &shutdown, &config))
        };

        Ok(EdgeServer {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins every thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    /// Blocks until the server shuts down (via `POST /shutdown`).
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for EdgeServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Queue full: shed load here, on the accept thread, so
                // the client learns immediately instead of queueing.
                let _ = stream.set_write_timeout(Some(config.write_timeout));
                let _ = write_response(&mut stream, 503, "application/octet-stream", b"");
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    cache: &EdgeCache,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    started: Instant,
) {
    loop {
        let stream = {
            let guard = match rx.lock() {
                Ok(guard) => guard,
                Err(_) => return,
            };
            match guard.recv_timeout(Duration::from_millis(200)) {
                Ok(stream) => Some(stream),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        match stream {
            Some(mut stream) => {
                let _ = stream.set_read_timeout(Some(config.read_timeout));
                let _ = stream.set_write_timeout(Some(config.write_timeout));
                handle_connection(&mut stream, cache, config, shutdown, started);
            }
            None => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// One parsed request head.
struct RequestHead {
    method: String,
    path: String,
    content_length: usize,
}

fn read_head(reader: &mut BufReader<&TcpStream>) -> Result<RequestHead, &'static str> {
    let mut line = String::new();
    let mut total = 0usize;
    reader
        .read_line(&mut line)
        .map_err(|_| "read request line")?;
    total += line.len();
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let path = parts.next().ok_or("missing path")?.to_string();
    let version = parts.next().ok_or("missing version")?;
    if !version.starts_with("HTTP/1.") {
        return Err("unsupported protocol version");
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|_| "read header")?;
        total += header.len();
        if total > MAX_HEAD {
            return Err("request head too large");
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| "bad content-length")?;
                if content_length > MAX_BODY {
                    return Err("body too large");
                }
            }
        }
    }
    Ok(RequestHead {
        method,
        path,
        content_length,
    })
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn handle_connection(
    stream: &mut TcpStream,
    cache: &EdgeCache,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    started: Instant,
) {
    let mut reader = BufReader::new(&*stream);
    let head = match read_head(&mut reader) {
        Ok(head) => head,
        Err(_) => {
            let _ = write_response(stream, 400, "text/plain", b"bad request\n");
            return;
        }
    };
    let mut body = vec![0u8; head.content_length];
    if reader.read_exact(&mut body).is_err() {
        let _ = write_response(stream, 400, "text/plain", b"short body\n");
        return;
    }
    // Wall-clock time since server start stands in for sim time: the
    // cache only needs a monotonically advancing recency clock.
    let elapsed = started.elapsed().as_nanos();
    let now = SimTime::from_nanos(u64::try_from(elapsed).unwrap_or(u64::MAX));

    match (head.method.as_str(), head.path.as_str()) {
        ("POST", "/batch") => match BatchRequest::decode(&body) {
            Ok(request) => match cache.apply_batch(&request, now) {
                Ok(response) => {
                    let wire = response.encode();
                    let _ = write_response(stream, 200, "application/octet-stream", &wire);
                }
                Err(_) => {
                    let _ = write_response(stream, 503, "text/plain", b"overloaded\n");
                }
            },
            Err(e) => {
                let msg = format!("decode error: {e}\n");
                let _ = write_response(stream, 400, "text/plain", msg.as_bytes());
            }
        },
        ("GET", "/snapshot") => {
            let blob = cache.snapshot_blob(now);
            let _ = write_response(stream, 200, "application/octet-stream", &blob);
        }
        ("GET", "/health") => {
            let body = format!("ok: {}\n", cache.counters());
            let _ = write_response(stream, 200, "text/plain", body.as_bytes());
        }
        ("POST", "/shutdown") if config.allow_shutdown => {
            let _ = write_response(stream, 200, "text/plain", b"shutting down\n");
            shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so `wait()` returns promptly.
            if let Ok(local) = stream.local_addr() {
                let _ = TcpStream::connect(local);
            }
        }
        ("POST", _) | ("GET", _) => {
            let _ = write_response(stream, 404, "text/plain", b"not found\n");
        }
        _ => {
            let _ = write_response(stream, 405, "text/plain", b"method not allowed\n");
        }
    }
}
