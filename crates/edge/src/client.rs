//! Minimal blocking HTTP/1.1 client for the edge server.
//!
//! One request per connection, mirroring the server's `Connection:
//! close` policy. Like `server.rs` this is runtime code — it touches
//! real sockets and wall-clock timeouts and is exempt from the
//! determinism lint that binds the model half.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::protocol::{BatchRequest, BatchResponse, DecodeError};

/// Largest response body the client will read.
const MAX_BODY: usize = 64 * 1024 * 1024;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server answered `503` — shed the batch or fall back.
    Overloaded,
    /// A non-200, non-503 status.
    Http {
        /// The status code the server returned.
        status: u16,
        /// The response body, lossily decoded.
        body: String,
    },
    /// The response bytes did not parse.
    Decode(DecodeError),
    /// The response head was not valid HTTP.
    Malformed(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Overloaded => write!(f, "server overloaded (503)"),
            ClientError::Http { status, body } => {
                write!(f, "http {status}: {}", body.trim_end())
            }
            ClientError::Decode(e) => write!(f, "response decode error: {e}"),
            ClientError::Malformed(what) => write!(f, "malformed response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking client bound to one server address.
#[derive(Debug, Clone)]
pub struct EdgeClient {
    addr: String,
    timeout: Duration,
}

/// One parsed HTTP response.
#[derive(Debug)]
struct RawResponse {
    status: u16,
    body: Vec<u8>,
}

impl EdgeClient {
    /// A client for `addr` (`host:port`) with a 5 s default timeout.
    pub fn new(addr: impl Into<String>) -> EdgeClient {
        EdgeClient {
            addr: addr.into(),
            timeout: Duration::from_secs(5),
        }
    }

    /// Replaces the connect/read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> EdgeClient {
        self.timeout = timeout;
        self
    }

    /// Sends one batch and returns the server's replies.
    pub fn batch(&self, request: &BatchRequest) -> Result<BatchResponse, ClientError> {
        let wire = request.encode();
        let raw = self.request("POST", "/batch", &wire)?;
        match raw.status {
            200 => BatchResponse::decode(&raw.body).map_err(ClientError::Decode),
            503 => Err(ClientError::Overloaded),
            status => Err(ClientError::Http {
                status,
                body: String::from_utf8_lossy(&raw.body).into_owned(),
            }),
        }
    }

    /// Fetches the server's one-line health/counter summary.
    pub fn health(&self) -> Result<String, ClientError> {
        let raw = self.request("GET", "/health", &[])?;
        if raw.status == 200 {
            Ok(String::from_utf8_lossy(&raw.body).into_owned())
        } else {
            Err(ClientError::Http {
                status: raw.status,
                body: String::from_utf8_lossy(&raw.body).into_owned(),
            })
        }
    }

    /// Fetches the compressed snapshot blob (feed it to
    /// [`EdgeCache::restore_blob`](crate::cache::EdgeCache::restore_blob)).
    pub fn snapshot(&self) -> Result<Vec<u8>, ClientError> {
        let raw = self.request("GET", "/snapshot", &[])?;
        if raw.status == 200 {
            Ok(raw.body)
        } else {
            Err(ClientError::Http {
                status: raw.status,
                body: String::from_utf8_lossy(&raw.body).into_owned(),
            })
        }
    }

    /// Asks the server to shut down (needs
    /// [`ServerConfig::allow_shutdown`](crate::server::ServerConfig::allow_shutdown)).
    pub fn shutdown(&self) -> Result<(), ClientError> {
        let raw = self.request("POST", "/shutdown", &[])?;
        if raw.status == 200 {
            Ok(())
        } else {
            Err(ClientError::Http {
                status: raw.status,
                body: String::from_utf8_lossy(&raw.body).into_owned(),
            })
        }
    }

    fn request(&self, method: &str, path: &str, body: &[u8]) -> Result<RawResponse, ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or(ClientError::Malformed("status line"))?;
        let mut content_length: Option<usize> = None;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header)?;
            let trimmed = header.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    let parsed = value
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| ClientError::Malformed("content-length"))?;
                    if parsed > MAX_BODY {
                        return Err(ClientError::Malformed("body too large"));
                    }
                    content_length = Some(parsed);
                }
            }
        }
        let body = match content_length {
            Some(len) => {
                let mut body = vec![0u8; len];
                reader.read_exact(&mut body)?;
                body
            }
            None => {
                // `Connection: close` responses without a length run to
                // EOF (bounded by MAX_BODY).
                let mut body = Vec::new();
                reader.take(MAX_BODY as u64).read_to_end(&mut body)?;
                body
            }
        };
        Ok(RawResponse { status, body })
    }
}
