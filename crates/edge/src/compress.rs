//! Hand-rolled LZ77 snapshot compression.
//!
//! The edge server periodically ships its whole cache snapshot to cold
//! clients (and to disk); snapshots are dominated by serialized feature
//! vectors whose bytes repeat heavily across entries, so a small greedy
//! LZ77 with a hash-table match finder recovers most of the win of a
//! real compressor without any external dependency.
//!
//! Wire format: `[MAGIC_Z, VERSION_Z]`, LEB128 uncompressed length,
//! then a token stream. A control byte with the top bit clear starts a
//! literal run of `ctrl + 1` bytes (1–128); a control byte with the top
//! bit set is a back-reference of length `(ctrl & 0x7F) + MIN_MATCH`
//! followed by an LEB128 distance (1 ≤ distance ≤ position).
//!
//! Decompression is total: corrupt input returns a typed
//! [`CompressError`], and the output buffer is bounded by the declared
//! length before anything is reserved.

use bytes::{BufMut, BytesMut};

/// First byte of a compressed snapshot.
pub const MAGIC_Z: u8 = 0xED;
/// Compressed-format version.
pub const VERSION_Z: u8 = 1;

/// Shortest back-reference worth emitting.
const MIN_MATCH: usize = 4;
/// Longest back-reference one token can carry.
const MAX_MATCH: usize = 127 + MIN_MATCH;
/// How far back a match may reach.
const WINDOW: usize = 64 * 1024;
/// Largest uncompressed size a decoder will agree to reconstruct.
pub const MAX_DECOMPRESSED: usize = 256 * 1024 * 1024;

/// Why a compressed blob failed to decompress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressError {
    /// The input ended before the declared output was complete.
    Truncated,
    /// The first byte was not [`MAGIC_Z`].
    BadMagic(u8),
    /// The version byte was not [`VERSION_Z`].
    BadVersion(u8),
    /// A token was internally inconsistent (distance beyond the output
    /// written so far, declared length over the cap, output overrun).
    Corrupt(&'static str),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed stream truncated"),
            CompressError::BadMagic(b) => write!(f, "bad snapshot magic 0x{b:02X}"),
            CompressError::BadVersion(b) => write!(f, "unsupported snapshot version {b}"),
            CompressError::Corrupt(what) => write!(f, "corrupt compressed stream: {what}"),
        }
    }
}

impl std::error::Error for CompressError {}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, CompressError> {
    match buf.split_first() {
        Some((&b, rest)) => {
            *buf = rest;
            Ok(b)
        }
        None => Err(CompressError::Truncated),
    }
}

fn take_varint(buf: &mut &[u8]) -> Result<u64, CompressError> {
    let mut v: u64 = 0;
    for i in 0..10 {
        let byte = take_u8(buf)?;
        let payload = u64::from(byte & 0x7F);
        if i == 9 && payload > 1 {
            return Err(CompressError::Corrupt("varint overflow"));
        }
        v |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(CompressError::Corrupt("varint too long"))
}

/// Hashes the 4 bytes at `data[i..]` into the match-finder table.
fn hash4(data: &[u8], i: usize) -> usize {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&data[i..i + 4]);
    let v = u32::from_le_bytes(raw);
    // Fibonacci hashing; the table is 2^15 slots.
    (v.wrapping_mul(0x9E37_79B9) >> 17) as usize
}

/// Compresses `input`. Worst case (incompressible input) costs one
/// control byte per 128 literals plus the header — under 1% overhead.
pub fn compress(input: &[u8]) -> BytesMut {
    let mut out = BytesMut::with_capacity(input.len() / 2 + 16);
    out.put_u8(MAGIC_Z);
    out.put_u8(VERSION_Z);
    put_varint(&mut out, input.len() as u64);

    // Last position each 4-byte hash was seen at (+1 so 0 means "never").
    let mut table = vec![0usize; 1 << 15];
    let mut literal_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut BytesMut, from: usize, to: usize| {
        let mut start = from;
        while start < to {
            let run = (to - start).min(128);
            out.put_u8((run - 1) as u8);
            out.put_slice(&input[start..start + run]);
            start += run;
        }
    };

    while i + MIN_MATCH <= input.len() {
        let slot = hash4(input, i);
        let candidate = table[slot];
        table[slot] = i + 1;
        let mut emitted = false;
        if candidate > 0 {
            let pos = candidate - 1;
            let distance = i - pos;
            if (1..=WINDOW).contains(&distance) {
                let limit = (input.len() - i).min(MAX_MATCH);
                let mut len = 0;
                while len < limit && input[pos + len] == input[i + len] {
                    len += 1;
                }
                if len >= MIN_MATCH {
                    flush_literals(&mut out, literal_start, i);
                    out.put_u8(0x80 | ((len - MIN_MATCH) as u8));
                    put_varint(&mut out, distance as u64);
                    // Seed the table through the match so later data can
                    // reference its interior.
                    let stop = (i + len).min(input.len().saturating_sub(MIN_MATCH - 1));
                    for j in (i + 1)..stop {
                        table[hash4(input, j)] = j + 1;
                    }
                    i += len;
                    literal_start = i;
                    emitted = true;
                }
            }
        }
        if !emitted {
            i += 1;
        }
    }
    flush_literals(&mut out, literal_start, input.len());
    out
}

/// Decompresses a blob produced by [`compress`].
pub fn decompress(mut input: &[u8]) -> Result<Vec<u8>, CompressError> {
    let magic = take_u8(&mut input)?;
    if magic != MAGIC_Z {
        return Err(CompressError::BadMagic(magic));
    }
    let version = take_u8(&mut input)?;
    if version != VERSION_Z {
        return Err(CompressError::BadVersion(version));
    }
    let declared = take_varint(&mut input)?;
    if declared > MAX_DECOMPRESSED as u64 {
        return Err(CompressError::Corrupt("declared length over cap"));
    }
    let declared = declared as usize;
    let mut out = Vec::with_capacity(declared.min(1 << 20));
    while out.len() < declared {
        let ctrl = take_u8(&mut input)?;
        if ctrl & 0x80 == 0 {
            let run = usize::from(ctrl) + 1;
            if input.len() < run {
                return Err(CompressError::Truncated);
            }
            if out.len() + run > declared {
                return Err(CompressError::Corrupt("literal run overruns output"));
            }
            out.extend_from_slice(&input[..run]);
            input = &input[run..];
        } else {
            let len = usize::from(ctrl & 0x7F) + MIN_MATCH;
            let distance = take_varint(&mut input)?;
            if distance == 0 || distance > out.len() as u64 {
                return Err(CompressError::Corrupt("back-reference before start"));
            }
            if out.len() + len > declared {
                return Err(CompressError::Corrupt("match overruns output"));
            }
            let distance = distance as usize;
            // Byte-at-a-time so overlapping matches (distance < len)
            // replicate, RLE-style.
            let start = out.len() - distance;
            for j in 0..len {
                let b = out[start + j];
                out.push(b);
            }
        }
    }
    if !input.is_empty() {
        return Err(CompressError::Corrupt("trailing bytes"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let z = compress(data);
        assert_eq!(decompress(&z).unwrap(), data, "round-trip mismatch");
        z.len()
    }

    #[test]
    fn empty_and_tiny_inputs_round_trip() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn repetitive_input_compresses() {
        let data: Vec<u8> = b"feature-vector-entry-".repeat(200);
        let z_len = round_trip(&data);
        assert!(
            z_len < data.len() / 4,
            "repetitive input only reached {z_len}/{} bytes",
            data.len()
        );
    }

    #[test]
    fn rle_style_overlap_round_trips() {
        // distance < length exercises the overlapping-copy path.
        let data = vec![7u8; 10_000];
        let z_len = round_trip(&data);
        assert!(z_len < 200, "constant input compressed to {z_len}");
    }

    #[test]
    fn incompressible_input_overhead_is_bounded() {
        // A linear congruential byte stream has no 4-byte repeats to
        // speak of; the output must stay within ~1% + header.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        let z = compress(&data);
        assert!(z.len() < data.len() + data.len() / 64 + 16);
        assert_eq!(decompress(&z).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_return_typed_errors() {
        let z = compress(b"the quick brown fox jumps over the lazy dog");
        // Bad magic / version.
        let mut bad = z.to_vec();
        bad[0] = 0x00;
        assert_eq!(decompress(&bad), Err(CompressError::BadMagic(0x00)));
        let mut bad = z.to_vec();
        bad[1] = 9;
        assert_eq!(decompress(&bad), Err(CompressError::BadVersion(9)));
        // Truncation at every prefix either errors or never panics.
        for cut in 0..z.len() {
            assert!(decompress(&z[..cut]).is_err(), "prefix {cut} decoded");
        }
        // Trailing garbage.
        let mut bad = z.to_vec();
        bad.push(0xFF);
        assert!(decompress(&bad).is_err());
        // A back-reference before the start of output.
        let mut forged = BytesMut::new();
        forged.put_u8(MAGIC_Z);
        forged.put_u8(VERSION_Z);
        put_varint(&mut forged, 10);
        forged.put_u8(0x80); // match of MIN_MATCH
        put_varint(&mut forged, 5); // ...but nothing written yet
        assert_eq!(
            decompress(&forged),
            Err(CompressError::Corrupt("back-reference before start"))
        );
        // Hostile declared length fails before allocating.
        let mut forged = BytesMut::new();
        forged.put_u8(MAGIC_Z);
        forged.put_u8(VERSION_Z);
        put_varint(&mut forged, u64::MAX / 2);
        assert_eq!(
            decompress(&forged),
            Err(CompressError::Corrupt("declared length over cap"))
        );
    }
}
