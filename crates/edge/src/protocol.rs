//! The edge-tier wire protocol.
//!
//! Devices talk to the edge cache in *batches*: one [`BatchRequest`]
//! carries any mix of lookup, insert, and gossip-advertisement frames,
//! and the server answers with one [`BatchResponse`] holding a reply per
//! frame in order. Batching amortizes the WAN round-trip — the dominant
//! cost of the tier — exactly as FluxShard-style edge offload does.
//!
//! The codec is hand-rolled over `bytes` and fully self-describing:
//! a magic byte, a version byte, a kind byte, then varint-framed
//! payloads. Feature-vector keys are the bulk of the traffic, so they
//! are XOR-delta coded: each component's `f32` bit pattern is XORed
//! with the previous component's and the result LEB128-varint encoded.
//! Components of similar magnitude share sign/exponent/high-mantissa
//! bits, so the deltas carry leading zeros and the varints shrink.
//!
//! Decoding is *total*: any byte slice either parses or returns a typed
//! [`DecodeError`] — never a panic, never unbounded allocation (frame
//! and dimension counts are capped before any buffer is reserved).

use features::FeatureVector;

use bytes::{BufMut, BytesMut};

/// First byte of every edge message (distinct from p2pnet's `0xAC`).
pub const MAGIC: u8 = 0xEC;
/// Wire-format version.
pub const VERSION: u8 = 1;

/// Kind byte of a [`BatchRequest`].
const KIND_REQUEST: u8 = 0x01;
/// Kind byte of a [`BatchResponse`].
const KIND_RESPONSE: u8 = 0x02;

/// Frame tags inside a request.
const TAG_LOOKUP: u8 = 0x10;
const TAG_INSERT: u8 = 0x11;
const TAG_GOSSIP_AD: u8 = 0x12;

/// Reply tags inside a response.
const TAG_HIT: u8 = 0x20;
const TAG_MISS: u8 = 0x21;
const TAG_ACCEPTED: u8 = 0x22;

/// Most frames a decoder will accept in one batch. A real client never
/// comes close; the cap keeps corrupt length prefixes from reserving
/// gigabytes.
pub const MAX_FRAMES: usize = 65_536;
/// Most key components a decoder will accept.
pub const MAX_KEY_DIM: usize = 4_096;

/// Why a byte slice failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the message did.
    Truncated,
    /// The first byte was not [`MAGIC`].
    BadMagic(u8),
    /// The version byte was not [`VERSION`].
    BadVersion(u8),
    /// An unknown kind or frame tag.
    BadTag(u8),
    /// A field held an impossible value (NaN confidence, zero-dim key,
    /// over-cap count, overlong varint...).
    BadField(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02X}"),
            DecodeError::BadVersion(b) => write!(f, "unsupported version {b}"),
            DecodeError::BadTag(b) => write!(f, "unknown tag 0x{b:02X}"),
            DecodeError::BadField(name) => write!(f, "invalid field: {name}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// One operation inside a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// "Does the edge cache recognise this key?"
    Lookup {
        /// The feature-space query key.
        key: FeatureVector,
    },
    /// "I ran full inference; cache the result." First-party results the
    /// edge stores with local-inference provenance.
    Insert {
        /// The feature-space key.
        key: FeatureVector,
        /// The recognized class.
        label: u32,
        /// Producer confidence in `[0, 1]`.
        confidence: f64,
    },
    /// "A nearby peer gave me this result; you may want it too." Relayed
    /// results the edge stores with peer provenance (admission may hold
    /// them to a higher bar).
    GossipAd {
        /// The feature-space key.
        key: FeatureVector,
        /// The advertised class.
        label: u32,
        /// Confidence the original producer attached.
        confidence: f64,
    },
}

/// A cache answer to one [`Frame::Lookup`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeHit {
    /// The cached class.
    pub label: u32,
    /// Confidence of the serving entry.
    pub confidence: f64,
    /// Distance from the query to the nearest neighbour.
    pub distance: f64,
}

/// Reply to one request frame, in frame order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reply {
    /// The lookup hit.
    Hit(EdgeHit),
    /// The lookup missed.
    Miss,
    /// The insert / gossip ad was applied (or absorbed by admission —
    /// the device does not care which).
    Accepted,
}

/// A batch of operations from one device.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// Stable id of the sending device.
    pub device: u64,
    /// The operations, answered in order.
    pub frames: Vec<Frame>,
}

/// The server's answers, one per request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResponse {
    /// Replies in frame order.
    pub replies: Vec<Reply>,
}

// ---------------------------------------------------------------------
// varint + key coding
// ---------------------------------------------------------------------

/// Appends an LEB128 varint.
fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Encoded size of an LEB128 varint.
fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, DecodeError> {
    match buf.split_first() {
        Some((&b, rest)) => {
            *buf = rest;
            Ok(b)
        }
        None => Err(DecodeError::Truncated),
    }
}

/// Reads an LEB128 varint (at most 10 bytes; the 10th may only carry the
/// final bit of a `u64`).
fn take_varint(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    for i in 0..10 {
        let byte = take_u8(buf)?;
        let payload = u64::from(byte & 0x7F);
        if i == 9 && payload > 1 {
            return Err(DecodeError::BadField("varint overflow"));
        }
        v |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeError::BadField("varint too long"))
}

fn take_f64(buf: &mut &[u8], field: &'static str) -> Result<f64, DecodeError> {
    if buf.len() < 8 {
        return Err(DecodeError::Truncated);
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[..8]);
    *buf = &buf[8..];
    let v = f64::from_le_bytes(raw);
    if v.is_finite() {
        Ok(v)
    } else {
        Err(DecodeError::BadField(field))
    }
}

/// Appends an XOR-delta varint-coded key: dimension, then each
/// component's `f32` bits XORed with the previous component's bits.
fn put_key(buf: &mut BytesMut, key: &FeatureVector) {
    let components = key.as_slice();
    put_varint(buf, components.len() as u64);
    let mut prev: u32 = 0;
    for &x in components {
        let bits = x.to_bits();
        put_varint(buf, u64::from(bits ^ prev));
        prev = bits;
    }
}

/// Exact encoded size of [`put_key`]'s output.
fn key_len(key: &FeatureVector) -> usize {
    let components = key.as_slice();
    let mut n = varint_len(components.len() as u64);
    let mut prev: u32 = 0;
    for &x in components {
        let bits = x.to_bits();
        n += varint_len(u64::from(bits ^ prev));
        prev = bits;
    }
    n
}

fn take_key(buf: &mut &[u8]) -> Result<FeatureVector, DecodeError> {
    let dim = take_varint(buf)?;
    if dim == 0 {
        return Err(DecodeError::BadField("key dimension zero"));
    }
    if dim > MAX_KEY_DIM as u64 {
        return Err(DecodeError::BadField("key dimension over cap"));
    }
    let dim = dim as usize;
    let mut components = Vec::with_capacity(dim);
    let mut prev: u32 = 0;
    for _ in 0..dim {
        let delta = take_varint(buf)?;
        let delta = u32::try_from(delta).map_err(|_| DecodeError::BadField("key delta"))?;
        let bits = delta ^ prev;
        prev = bits;
        components.push(f32::from_bits(bits));
    }
    FeatureVector::from_vec(components).map_err(|_| DecodeError::BadField("key not finite"))
}

// ---------------------------------------------------------------------
// frames
// ---------------------------------------------------------------------

impl Frame {
    fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Frame::Lookup { key } => {
                buf.put_u8(TAG_LOOKUP);
                put_key(buf, key);
            }
            Frame::Insert {
                key,
                label,
                confidence,
            } => {
                buf.put_u8(TAG_INSERT);
                put_key(buf, key);
                put_varint(buf, u64::from(*label));
                buf.put_f64_le(*confidence);
            }
            Frame::GossipAd {
                key,
                label,
                confidence,
            } => {
                buf.put_u8(TAG_GOSSIP_AD);
                put_key(buf, key);
                put_varint(buf, u64::from(*label));
                buf.put_f64_le(*confidence);
            }
        }
    }

    /// Exact encoded size of this frame.
    pub fn encoded_len(&self) -> usize {
        match self {
            Frame::Lookup { key } => 1 + key_len(key),
            Frame::Insert { key, label, .. } | Frame::GossipAd { key, label, .. } => {
                1 + key_len(key) + varint_len(u64::from(*label)) + 8
            }
        }
    }

    fn decode_from(buf: &mut &[u8]) -> Result<Frame, DecodeError> {
        let tag = take_u8(buf)?;
        match tag {
            TAG_LOOKUP => Ok(Frame::Lookup {
                key: take_key(buf)?,
            }),
            TAG_INSERT | TAG_GOSSIP_AD => {
                let key = take_key(buf)?;
                let label64 = take_varint(buf)?;
                let label =
                    u32::try_from(label64).map_err(|_| DecodeError::BadField("label over u32"))?;
                let confidence = take_f64(buf, "confidence not finite")?;
                if !(0.0..=1.0).contains(&confidence) {
                    return Err(DecodeError::BadField("confidence outside [0, 1]"));
                }
                if tag == TAG_INSERT {
                    Ok(Frame::Insert {
                        key,
                        label,
                        confidence,
                    })
                } else {
                    Ok(Frame::GossipAd {
                        key,
                        label,
                        confidence,
                    })
                }
            }
            other => Err(DecodeError::BadTag(other)),
        }
    }
}

impl Reply {
    fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Reply::Hit(hit) => {
                buf.put_u8(TAG_HIT);
                put_varint(buf, u64::from(hit.label));
                buf.put_f64_le(hit.confidence);
                buf.put_f64_le(hit.distance);
            }
            Reply::Miss => buf.put_u8(TAG_MISS),
            Reply::Accepted => buf.put_u8(TAG_ACCEPTED),
        }
    }

    /// Exact encoded size of this reply.
    pub fn encoded_len(&self) -> usize {
        match self {
            Reply::Hit(hit) => 1 + varint_len(u64::from(hit.label)) + 16,
            Reply::Miss | Reply::Accepted => 1,
        }
    }

    fn decode_from(buf: &mut &[u8]) -> Result<Reply, DecodeError> {
        let tag = take_u8(buf)?;
        match tag {
            TAG_HIT => {
                let label64 = take_varint(buf)?;
                let label =
                    u32::try_from(label64).map_err(|_| DecodeError::BadField("label over u32"))?;
                let confidence = take_f64(buf, "confidence not finite")?;
                if !(0.0..=1.0).contains(&confidence) {
                    return Err(DecodeError::BadField("confidence outside [0, 1]"));
                }
                let distance = take_f64(buf, "distance not finite")?;
                if distance < 0.0 {
                    return Err(DecodeError::BadField("distance negative"));
                }
                Ok(Reply::Hit(EdgeHit {
                    label,
                    confidence,
                    distance,
                }))
            }
            TAG_MISS => Ok(Reply::Miss),
            TAG_ACCEPTED => Ok(Reply::Accepted),
            other => Err(DecodeError::BadTag(other)),
        }
    }
}

fn check_header(buf: &mut &[u8], kind: u8) -> Result<(), DecodeError> {
    let magic = take_u8(buf)?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = take_u8(buf)?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let got = take_u8(buf)?;
    if got != kind {
        return Err(DecodeError::BadTag(got));
    }
    Ok(())
}

impl BatchRequest {
    /// Encodes to the wire format.
    pub fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u8(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_REQUEST);
        put_varint(&mut buf, self.device);
        put_varint(&mut buf, self.frames.len() as u64);
        for frame in &self.frames {
            frame.encode_into(&mut buf);
        }
        buf
    }

    /// Exact size [`encode`](BatchRequest::encode) will produce.
    pub fn encoded_len(&self) -> usize {
        3 + varint_len(self.device)
            + varint_len(self.frames.len() as u64)
            + self.frames.iter().map(Frame::encoded_len).sum::<usize>()
    }

    /// Decodes a full message; trailing bytes are an error.
    pub fn decode(mut buf: &[u8]) -> Result<BatchRequest, DecodeError> {
        check_header(&mut buf, KIND_REQUEST)?;
        let device = take_varint(&mut buf)?;
        let count = take_varint(&mut buf)?;
        if count > MAX_FRAMES as u64 {
            return Err(DecodeError::BadField("frame count over cap"));
        }
        let mut frames = Vec::with_capacity(count as usize);
        for _ in 0..count {
            frames.push(Frame::decode_from(&mut buf)?);
        }
        if !buf.is_empty() {
            return Err(DecodeError::BadField("trailing bytes"));
        }
        Ok(BatchRequest { device, frames })
    }
}

impl BatchResponse {
    /// Encodes to the wire format.
    pub fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u8(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_RESPONSE);
        put_varint(&mut buf, self.replies.len() as u64);
        for reply in &self.replies {
            reply.encode_into(&mut buf);
        }
        buf
    }

    /// Exact size [`encode`](BatchResponse::encode) will produce.
    pub fn encoded_len(&self) -> usize {
        3 + varint_len(self.replies.len() as u64)
            + self.replies.iter().map(Reply::encoded_len).sum::<usize>()
    }

    /// Decodes a full message; trailing bytes are an error.
    pub fn decode(mut buf: &[u8]) -> Result<BatchResponse, DecodeError> {
        check_header(&mut buf, KIND_RESPONSE)?;
        let count = take_varint(&mut buf)?;
        if count > MAX_FRAMES as u64 {
            return Err(DecodeError::BadField("reply count over cap"));
        }
        let mut replies = Vec::with_capacity(count as usize);
        for _ in 0..count {
            replies.push(Reply::decode_from(&mut buf)?);
        }
        if !buf.is_empty() {
            return Err(DecodeError::BadField("trailing bytes"));
        }
        Ok(BatchResponse { replies })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(components: Vec<f32>) -> FeatureVector {
        FeatureVector::from_vec(components).unwrap()
    }

    fn sample_request() -> BatchRequest {
        BatchRequest {
            device: 42,
            frames: vec![
                Frame::Lookup {
                    key: key(vec![0.5, 0.5001, -0.25, 1.5]),
                },
                Frame::Insert {
                    key: key(vec![1.0, 2.0]),
                    label: 7,
                    confidence: 0.93,
                },
                Frame::GossipAd {
                    key: key(vec![-3.0]),
                    label: 1_000_000,
                    confidence: 0.5,
                },
            ],
        }
    }

    fn sample_response() -> BatchResponse {
        BatchResponse {
            replies: vec![
                Reply::Hit(EdgeHit {
                    label: 7,
                    confidence: 0.93,
                    distance: 0.125,
                }),
                Reply::Miss,
                Reply::Accepted,
            ],
        }
    }

    #[test]
    fn request_round_trips_and_len_is_exact() {
        let req = sample_request();
        let wire = req.encode();
        assert_eq!(wire.len(), req.encoded_len());
        assert_eq!(BatchRequest::decode(&wire).unwrap(), req);
    }

    #[test]
    fn response_round_trips_and_len_is_exact() {
        let resp = sample_response();
        let wire = resp.encode();
        assert_eq!(wire.len(), resp.encoded_len());
        assert_eq!(BatchResponse::decode(&wire).unwrap(), resp);
    }

    #[test]
    fn empty_batch_round_trips() {
        let req = BatchRequest {
            device: 0,
            frames: vec![],
        };
        let wire = req.encode();
        assert_eq!(wire.len(), req.encoded_len());
        assert_eq!(BatchRequest::decode(&wire).unwrap(), req);
    }

    #[test]
    fn similar_components_compress() {
        // XOR-delta coding: a near-constant key (the common case for
        // consecutive video frames) must encode well under 4 bytes per
        // component.
        let dim = 64;
        let near_constant: Vec<f32> = (0..dim).map(|i| 0.5 + (i as f32) * 1e-6).collect();
        let frame = Frame::Lookup {
            key: key(near_constant),
        };
        assert!(
            frame.encoded_len() < 1 + 2 + dim * 4,
            "delta coding saved nothing: {} bytes for {dim} dims",
            frame.encoded_len()
        );
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        for msg in [sample_request().encode(), sample_response().encode()] {
            for cut in 0..msg.len() {
                let r = BatchRequest::decode(&msg[..cut]);
                let s = BatchResponse::decode(&msg[..cut]);
                assert!(r.is_err() && s.is_err(), "prefix of {cut} bytes decoded");
            }
        }
    }

    #[test]
    fn rejects_bad_magic_version_tag_and_trailing() {
        let mut wire = sample_request().encode().to_vec();
        let original = wire.clone();
        wire[0] = 0xAB;
        assert_eq!(
            BatchRequest::decode(&wire),
            Err(DecodeError::BadMagic(0xAB))
        );
        wire = original.clone();
        wire[1] = 9;
        assert_eq!(BatchRequest::decode(&wire), Err(DecodeError::BadVersion(9)));
        wire = original.clone();
        wire[2] = 0x77;
        assert_eq!(BatchRequest::decode(&wire), Err(DecodeError::BadTag(0x77)));
        wire = original.clone();
        wire.push(0);
        assert_eq!(
            BatchRequest::decode(&wire),
            Err(DecodeError::BadField("trailing bytes"))
        );
        // A response decoder refuses a request (kind mismatch) and vice
        // versa.
        assert!(BatchResponse::decode(&original).is_err());
        assert!(BatchRequest::decode(&sample_response().encode()).is_err());
    }

    #[test]
    fn rejects_hostile_counts_and_values() {
        // Frame count over cap must fail before allocating.
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_REQUEST);
        put_varint(&mut buf, 1);
        put_varint(&mut buf, u64::MAX);
        assert_eq!(
            BatchRequest::decode(&buf),
            Err(DecodeError::BadField("frame count over cap"))
        );

        // Zero-dimension key.
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_REQUEST);
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 1);
        buf.put_u8(TAG_LOOKUP);
        put_varint(&mut buf, 0);
        assert_eq!(
            BatchRequest::decode(&buf),
            Err(DecodeError::BadField("key dimension zero"))
        );

        // NaN key component (bit pattern of f32::NAN survives the XOR
        // delta but not FeatureVector validation).
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_REQUEST);
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 1);
        buf.put_u8(TAG_LOOKUP);
        put_varint(&mut buf, 1);
        put_varint(&mut buf, u64::from(f32::NAN.to_bits()));
        assert_eq!(
            BatchRequest::decode(&buf),
            Err(DecodeError::BadField("key not finite"))
        );

        // NaN confidence on a hit.
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(KIND_RESPONSE);
        put_varint(&mut buf, 1);
        buf.put_u8(TAG_HIT);
        put_varint(&mut buf, 3);
        buf.put_f64_le(f64::NAN);
        buf.put_f64_le(0.5);
        assert_eq!(
            BatchResponse::decode(&buf),
            Err(DecodeError::BadField("confidence not finite"))
        );
    }

    #[test]
    fn varint_round_trips_across_magnitudes() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v));
            let mut cursor: &[u8] = &buf;
            assert_eq!(take_varint(&mut cursor).unwrap(), v);
            assert!(cursor.is_empty());
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // 10 continuation bytes with payload bits beyond bit 63.
        let bad = [0xFFu8; 10];
        let mut cursor: &[u8] = &bad;
        assert_eq!(
            take_varint(&mut cursor),
            Err(DecodeError::BadField("varint overflow"))
        );
    }
}
