//! Loopback integration: the real TCP server must answer a batched
//! lookup/insert/gossip session byte-identically to the in-process
//! `EdgeCache`, and overload must surface as `503`, never as blocking.

use std::time::Duration;

use features::FeatureVector;
use simcore::SimTime;

use edge::{
    BatchRequest, ClientError, EdgeCache, EdgeCacheConfig, EdgeClient, EdgeServer, Frame, Reply,
    ServerConfig,
};

fn key(components: &[f32]) -> FeatureVector {
    FeatureVector::from_vec(components.to_vec()).unwrap()
}

fn session_batches() -> Vec<BatchRequest> {
    vec![
        BatchRequest {
            device: 1,
            frames: vec![
                Frame::Lookup {
                    key: key(&[0.0, 0.0, 0.0]),
                },
                Frame::Insert {
                    key: key(&[0.0, 0.0, 0.0]),
                    label: 11,
                    confidence: 0.95,
                },
            ],
        },
        BatchRequest {
            device: 2,
            frames: vec![
                Frame::Lookup {
                    key: key(&[0.05, 0.0, 0.0]),
                },
                Frame::GossipAd {
                    key: key(&[5.0, 5.0, 5.0]),
                    label: 3,
                    // Above the default 0.8 peer-confidence admission
                    // floor, so the ad actually lands.
                    confidence: 0.9,
                },
            ],
        },
        BatchRequest {
            device: 1,
            frames: vec![
                Frame::Lookup {
                    key: key(&[5.0, 5.05, 5.0]),
                },
                Frame::Lookup {
                    key: key(&[100.0, -100.0, 0.0]),
                },
            ],
        },
    ]
}

#[test]
fn tcp_session_matches_in_process_cache_byte_for_byte() {
    let config = EdgeCacheConfig {
        capacity: 64,
        distance_threshold: 1.0,
        queue_limit: 128,
    };
    let served = EdgeCache::new(config).unwrap();
    let reference = EdgeCache::new(config).unwrap();

    let server = EdgeServer::start("127.0.0.1:0", served.clone(), ServerConfig::default())
        .expect("bind ephemeral port");
    let client = EdgeClient::new(server.addr().to_string()).with_timeout(Duration::from_secs(10));

    for (i, batch) in session_batches().iter().enumerate() {
        let over_tcp = client.batch(batch).expect("tcp batch");
        let in_process = reference
            .apply_batch(batch, SimTime::from_millis(i as u64))
            .expect("in-process batch");
        // The replies must agree on the wire, bit for bit.
        assert_eq!(
            over_tcp.encode().to_vec(),
            in_process.encode().to_vec(),
            "batch {i} diverged between TCP and in-process"
        );
    }

    // Both caches saw the same traffic.
    let tcp_counters = served.counters();
    let ref_counters = reference.counters();
    assert_eq!(tcp_counters, ref_counters);
    assert_eq!(tcp_counters.batches, 3);
    assert_eq!(tcp_counters.hits, 2, "second and third lookups hit");

    // Health reports the same counters over HTTP.
    let health = client.health().expect("health");
    assert!(
        health.starts_with("ok:"),
        "unexpected health line: {health}"
    );

    // The snapshot round-trips into a cold in-process cache.
    let blob = client.snapshot().expect("snapshot");
    let cold = EdgeCache::new(config).unwrap();
    let restored = cold.restore_blob(&blob, SimTime::ZERO).expect("restore");
    assert_eq!(restored, served.len());

    server.stop();
}

#[test]
fn overload_returns_503_not_blocking() {
    let config = EdgeCacheConfig {
        capacity: 64,
        distance_threshold: 1.0,
        queue_limit: 2,
    };
    let cache = EdgeCache::new(config).unwrap();
    let server = EdgeServer::start("127.0.0.1:0", cache.clone(), ServerConfig::default())
        .expect("bind ephemeral port");
    let client = EdgeClient::new(server.addr().to_string()).with_timeout(Duration::from_secs(10));

    // Three frames against a queue limit of two must be shed.
    let oversized = BatchRequest {
        device: 9,
        frames: (0..3)
            .map(|i| Frame::Lookup {
                key: key(&[i as f32, 0.0, 0.0]),
            })
            .collect(),
    };
    let started = std::time::Instant::now();
    match client.batch(&oversized) {
        Err(ClientError::Overloaded) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "overload must answer immediately, not block"
    );
    assert_eq!(cache.counters().overloads, 1);

    // A fitting batch still succeeds afterwards.
    let small = BatchRequest {
        device: 9,
        frames: vec![Frame::Lookup {
            key: key(&[0.0, 0.0, 0.0]),
        }],
    };
    match client.batch(&small).expect("small batch").replies[0] {
        Reply::Miss => {}
        other => panic!("expected a miss on an empty cache, got {other:?}"),
    }

    server.stop();
}

#[test]
fn malformed_bodies_get_400_and_unknown_routes_404() {
    let cache = EdgeCache::new(EdgeCacheConfig::default()).unwrap();
    let server = EdgeServer::start("127.0.0.1:0", cache, ServerConfig::default())
        .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    // Hand-rolled request with a garbage body.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .write_all(b"POST /batch HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz")
        .unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 400"), "got: {reply}");

    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 404"), "got: {reply}");

    server.stop();
}

#[test]
fn shutdown_route_is_gated_and_clean() {
    let cache = EdgeCache::new(EdgeCacheConfig::default()).unwrap();

    // Without the flag, /shutdown is a 404 and the server stays up.
    let server = EdgeServer::start("127.0.0.1:0", cache.clone(), ServerConfig::default())
        .expect("bind ephemeral port");
    let client = EdgeClient::new(server.addr().to_string());
    assert!(matches!(
        client.shutdown(),
        Err(ClientError::Http { status: 404, .. })
    ));
    assert!(client.health().is_ok(), "server must still answer");
    server.stop();

    // With the flag, /shutdown drains the server; wait() returns.
    let server = EdgeServer::start(
        "127.0.0.1:0",
        cache,
        ServerConfig {
            allow_shutdown: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let client = EdgeClient::new(server.addr().to_string());
    client.shutdown().expect("shutdown acknowledged");
    server.wait();
}
