//! Property tests over the wire codec and the snapshot compressor:
//! encode→decode identity for every frame and reply type, totality of
//! both decoders over arbitrary bytes (typed errors, never a panic),
//! and compressor round-trips.

use proptest::prelude::*;

use features::FeatureVector;

use edge::{BatchRequest, BatchResponse, EdgeHit, Frame, Reply};

fn arb_key() -> impl Strategy<Value = FeatureVector> {
    proptest::collection::vec(-100.0f32..100.0, 1..48)
        .prop_map(|v| FeatureVector::from_vec(v).unwrap())
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        arb_key().prop_map(|key| Frame::Lookup { key }),
        (arb_key(), any::<u32>(), 0.0f64..1.0).prop_map(|(key, label, confidence)| {
            Frame::Insert {
                key,
                label,
                confidence,
            }
        }),
        (arb_key(), any::<u32>(), 0.0f64..1.0).prop_map(|(key, label, confidence)| {
            Frame::GossipAd {
                key,
                label,
                confidence,
            }
        }),
    ]
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        (any::<u32>(), 0.0f64..1.0, 0.0f64..100.0).prop_map(|(label, confidence, distance)| {
            Reply::Hit(EdgeHit {
                label,
                confidence,
                distance,
            })
        }),
        Just(Reply::Miss),
        Just(Reply::Accepted),
    ]
}

proptest! {
    #[test]
    fn request_round_trips(
        device in any::<u64>(),
        frames in proptest::collection::vec(arb_frame(), 0..8),
    ) {
        let request = BatchRequest { device, frames };
        let wire = request.encode();
        prop_assert_eq!(wire.len(), request.encoded_len());
        prop_assert_eq!(BatchRequest::decode(&wire).unwrap(), request);
    }

    #[test]
    fn response_round_trips(replies in proptest::collection::vec(arb_reply(), 0..8)) {
        let response = BatchResponse { replies };
        let wire = response.encode();
        prop_assert_eq!(wire.len(), response.encoded_len());
        prop_assert_eq!(BatchResponse::decode(&wire).unwrap(), response);
    }

    #[test]
    fn decoders_are_total(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any byte soup must yield Ok or a typed error — never a panic.
        let _ = BatchRequest::decode(&data);
        let _ = BatchResponse::decode(&data);
        let _ = edge::decompress(&data);
    }

    #[test]
    fn truncated_valid_requests_error(
        frames in proptest::collection::vec(arb_frame(), 1..4),
        fraction in 0.0f64..1.0,
    ) {
        let request = BatchRequest { device: 7, frames };
        let wire = request.encode();
        let cut = ((wire.len() as f64) * fraction) as usize;
        if cut < wire.len() {
            prop_assert!(BatchRequest::decode(&wire[..cut]).is_err());
        }
    }

    #[test]
    fn compressor_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let z = edge::compress(&data);
        prop_assert_eq!(edge::decompress(&z).unwrap(), data);
    }

    #[test]
    fn compressor_round_trips_repetitive(
        pattern in proptest::collection::vec(any::<u8>(), 1..32),
        repeats in 1usize..200,
    ) {
        let data: Vec<u8> = pattern.iter().copied().cycle().take(pattern.len() * repeats).collect();
        let z = edge::compress(&data);
        prop_assert_eq!(edge::decompress(&z).unwrap(), data);
    }
}
