//! Deterministic concurrency tests for the sharded store.
//!
//! Thread scheduling is the one source of nondeterminism the store
//! cannot remove, so these tests pin down exactly what *is* guaranteed
//! under it:
//!
//! - writers touching **disjoint** routing buckets never contend, and the
//!   merged snapshot — ids included — is byte-identical whatever the
//!   worker count, because each shard sees a single writer's sequence;
//! - writers touching **overlapping** buckets may interleave (so ids may
//!   differ run to run), but the canonical snapshot (ids erased) and the
//!   merged operation counters must match a sequential execution exactly.

use std::collections::BTreeMap;
use std::thread;

use features::FeatureVector;
use reuse::concurrent::route_signature;
use reuse::{AdmissionPolicy, CacheConfig, ConcurrentConfig, EntrySource, SharedCache};
use simcore::SimTime;

const DIM: usize = 4;
const SHARDS: usize = 4;
const KEYS_PER_SHARD: usize = 40;
const BUCKET_CELL: f64 = 4.0;

fn config() -> ConcurrentConfig {
    ConcurrentConfig::new(CacheConfig::new(1024).with_admission(AdmissionPolicy::admit_all()))
        .with_shards(SHARDS)
        .with_bucket_cell(BUCKET_CELL)
}

/// Deterministic keys grouped by their home shard: walk distinct
/// projection cells until every shard owns `KEYS_PER_SHARD` keys. Only
/// dimension 0 varies — its Rademacher sign is ±1, never zero, so the
/// projection genuinely moves with the walk (a constant vector could sit
/// in the projection's null space and pin every key to one bucket).
fn keys_by_home_shard() -> BTreeMap<usize, Vec<FeatureVector>> {
    let mut by_shard: BTreeMap<usize, Vec<FeatureVector>> = BTreeMap::new();
    for cell in 0..100_000u64 {
        if by_shard.len() == SHARDS && by_shard.values().all(|keys| keys.len() >= KEYS_PER_SHARD) {
            return by_shard;
        }
        // Spread cells far apart so each key occupies its own bucket.
        let mut components = vec![0.0f32; DIM];
        components[0] = cell as f32 * 100.0;
        let key = FeatureVector::from_vec(components).unwrap();
        let shard = (route_signature(&key, BUCKET_CELL) % SHARDS as u64) as usize;
        let keys = by_shard.entry(shard).or_default();
        if keys.len() < KEYS_PER_SHARD {
            keys.push(key);
        }
    }
    panic!("signature walk failed to cover all {SHARDS} shards");
}

/// Inserts each shard's key list from `threads` workers (worker `i` owns
/// shard `i`'s keys when threads == SHARDS; one worker does everything
/// sequentially when threads == 1) and returns the snapshot JSON.
fn run_disjoint(threads: usize) -> String {
    let cache: SharedCache<u32> = SharedCache::with_concurrency(config());
    let by_shard = keys_by_home_shard();
    let jobs: Vec<(usize, Vec<FeatureVector>)> = by_shard.into_iter().collect();
    if threads == 1 {
        for (shard, keys) in &jobs {
            for (i, key) in keys.iter().enumerate() {
                cache.insert(
                    key.clone(),
                    *shard as u32,
                    0.9,
                    EntrySource::LocalInference,
                    SimTime::from_millis(i as u64),
                );
            }
        }
    } else {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(shard, keys)| {
                let cache = cache.clone();
                thread::spawn(move || {
                    for (i, key) in keys.iter().enumerate() {
                        cache.insert(
                            key.clone(),
                            shard as u32,
                            0.9,
                            EntrySource::LocalInference,
                            SimTime::from_millis(i as u64),
                        );
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
    }
    cache.snapshot(SimTime::from_secs(60)).to_json().unwrap()
}

#[test]
fn disjoint_shard_writers_produce_byte_identical_snapshots() {
    let sequential = run_disjoint(1);
    let concurrent = run_disjoint(SHARDS);
    assert_eq!(
        sequential, concurrent,
        "per-shard writer order is deterministic, so even entry ids must match"
    );
    // And re-running concurrently is stable too.
    assert_eq!(concurrent, run_disjoint(SHARDS));
}

#[test]
fn overlapping_writers_balance_counters_and_canonical_state() {
    // Every worker inserts every shard's keys, labelled per worker, so
    // all workers contend on all four shards.
    let by_shard = keys_by_home_shard();
    let all_keys: Vec<FeatureVector> = by_shard.into_values().flatten().collect();
    let workers = 4usize;

    let concurrent: SharedCache<u32> = SharedCache::with_concurrency(config());
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let cache = concurrent.clone();
            let keys = all_keys.clone();
            thread::spawn(move || {
                for (i, key) in keys.iter().enumerate() {
                    // Offset each worker's keys into its own cells so the
                    // total entry count is exact (no cross-worker dedup).
                    let shifted: Vec<f32> = key
                        .as_slice()
                        .iter()
                        .map(|c| c + w as f32 * 1_000_000.0)
                        .collect();
                    let shifted = FeatureVector::from_vec(shifted).unwrap();
                    cache.insert(
                        shifted,
                        w as u32,
                        0.9,
                        EntrySource::LocalInference,
                        SimTime::from_millis(i as u64),
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let sequential: SharedCache<u32> = SharedCache::with_concurrency(config());
    for w in 0..workers {
        for (i, key) in all_keys.iter().enumerate() {
            let shifted: Vec<f32> = key
                .as_slice()
                .iter()
                .map(|c| c + w as f32 * 1_000_000.0)
                .collect();
            sequential.insert(
                FeatureVector::from_vec(shifted).unwrap(),
                w as u32,
                0.9,
                EntrySource::LocalInference,
                SimTime::from_millis(i as u64),
            );
        }
    }

    let total = workers * all_keys.len();
    assert_eq!(concurrent.len(), total, "no insert may be lost");
    assert_eq!(concurrent.stats().inserts, total as u64);
    assert_eq!(
        concurrent.stats(),
        sequential.stats(),
        "counters must balance"
    );
    // Interleaving may permute entry ids, but nothing else: the
    // id-erased canonical snapshots must be identical.
    let at = SimTime::from_secs(60);
    assert_eq!(
        serde_json::to_string(&concurrent.canonical_snapshot(at)).unwrap(),
        serde_json::to_string(&sequential.canonical_snapshot(at)).unwrap(),
        "canonical state must be schedule-independent"
    );
}

#[test]
fn lookups_and_inserts_interleave_without_counter_drift() {
    let cache: SharedCache<u32> = SharedCache::with_concurrency(config());
    let by_shard = keys_by_home_shard();
    let all_keys: Vec<FeatureVector> = by_shard.into_values().flatten().collect();
    for (i, key) in all_keys.iter().enumerate() {
        cache.insert(
            key.clone(),
            1,
            0.9,
            EntrySource::LocalInference,
            SimTime::from_millis(i as u64),
        );
    }
    let rounds = 25usize;
    let handles: Vec<_> = (0..4usize)
        .map(|_| {
            let cache = cache.clone();
            let keys = all_keys.clone();
            thread::spawn(move || {
                let mut hits = 0u64;
                for _ in 0..rounds {
                    for key in &keys {
                        if cache.lookup(key, SimTime::from_secs(1)).is_hit() {
                            hits += 1;
                        }
                    }
                }
                hits
            })
        })
        .collect();
    let hits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let expected = (4 * rounds * all_keys.len()) as u64;
    assert_eq!(hits, expected, "every self-lookup must hit");
    assert_eq!(cache.stats().hits, expected);
    assert_eq!(cache.stats().lookups, expected);
}
