//! Oracle equivalence: the sharded concurrent store at one shard with no
//! frequency admission must be operation-for-operation identical to the
//! plain single-threaded [`ApproxCache`] it replaced. This is the
//! contract that keeps the golden experiment results byte-identical
//! across the store rebuild — any divergence here is a regression in the
//! concurrent core, not a tuning difference.
//!
//! The suite drives both backends through identical randomized operation
//! sequences (lookups, inserts across sources and confidences, expiry
//! sweeps, clears) for every standard eviction policy and compares the
//! observable outcome of every single operation plus the full counter
//! state after each step.

use features::FeatureVector;
use reuse::{
    ApproxCache, CacheConfig, ConcurrentConfig, EntrySource, EvictionPolicy, InsertOutcome,
    LookupResult, ShardedCache,
};
use simcore::{SimDuration, SimRng, SimTime};

const DIM: usize = 8;
const STEPS: usize = 800;

/// A key near one of a handful of cluster centres, so lookups hit,
/// inserts refresh near-duplicates, and capacity pressure forces real
/// evictions.
fn key(rng: &mut SimRng) -> FeatureVector {
    let centre = rng.index(6) as f32;
    let components: Vec<f32> = (0..DIM)
        .map(|d| {
            let base = if d == 0 { centre * 25.0 } else { centre };
            base + rng.normal(0.0, 0.05) as f32
        })
        .collect();
    FeatureVector::from_vec(components).unwrap()
}

fn source(rng: &mut SimRng) -> EntrySource {
    if rng.chance(0.3) {
        EntrySource::Peer
    } else {
        EntrySource::LocalInference
    }
}

/// Drives both backends through the same operation stream and asserts
/// observable equivalence after every operation.
fn assert_equivalent(policy: EvictionPolicy, seed: u64) {
    let config = CacheConfig::new(8).with_eviction(policy);
    let mut oracle: ApproxCache<u32> = ApproxCache::new(config.clone());
    let sharded: ShardedCache<u32> = ShardedCache::new(ConcurrentConfig::new(config));
    let mut rng = SimRng::seed(seed).split(policy.name());

    for step in 0..STEPS {
        // Colliding timestamps exercise the id tiebreaks.
        let now = SimTime::from_millis((step as u64 / 3) * 15);
        let roll = rng.uniform(0.0, 1.0);
        if roll < 0.45 {
            let k = key(&mut rng);
            let a: LookupResult<u32> = oracle.lookup(&k, now);
            let b = sharded.lookup(&k, now);
            assert_eq!(a, b, "lookup diverged at step {step}");
        } else if roll < 0.9 {
            let k = key(&mut rng);
            let label = rng.index(6) as u32;
            let confidence = rng.uniform(0.2, 1.0);
            let src = source(&mut rng);
            let a = oracle.insert(k.clone(), label, confidence, src, now);
            let b = sharded.insert(k, label, confidence, src, now);
            assert_eq!(a, b, "insert diverged at step {step}");
        } else if roll < 0.98 {
            let max_age = SimDuration::from_millis(rng.index(200) as u64 + 1);
            let a = oracle.expire_older_than(now, max_age);
            let b = sharded.expire_older_than(now, max_age);
            assert_eq!(a, b, "expiry count diverged at step {step}");
        } else {
            oracle.clear();
            sharded.clear();
        }
        assert_eq!(oracle.len(), sharded.len(), "len diverged at step {step}");
        assert_eq!(
            *oracle.stats(),
            sharded.stats(),
            "counters diverged at step {step}"
        );
    }
    assert!(
        oracle.stats().evictions > 0,
        "workload must exercise eviction for {} to prove anything",
        policy.name()
    );
}

#[test]
fn sharded_store_matches_oracle_under_lru() {
    assert_equivalent(EvictionPolicy::Lru, 0x0e_1111);
}

#[test]
fn sharded_store_matches_oracle_under_lfu() {
    assert_equivalent(EvictionPolicy::Lfu, 0x0e_2222);
}

#[test]
fn sharded_store_matches_oracle_under_ttl_and_utility() {
    for (i, policy) in EvictionPolicy::standard_set().into_iter().enumerate() {
        match policy {
            EvictionPolicy::Lru | EvictionPolicy::Lfu => {} // covered above
            _ => assert_equivalent(policy, 0x0e_3000 + i as u64),
        }
    }
}

/// The snapshot of the single-shard store must also match the oracle's:
/// same entries, same ids, same usage metadata.
#[test]
fn sharded_snapshot_matches_oracle_snapshot() {
    let config = CacheConfig::new(16);
    let mut oracle: ApproxCache<u32> = ApproxCache::new(config.clone());
    let sharded: ShardedCache<u32> = ShardedCache::new(ConcurrentConfig::new(config));
    let mut rng = SimRng::seed(0x0e_4444);
    for step in 0..300u64 {
        let now = SimTime::from_millis(step * 10);
        let k = key(&mut rng);
        if rng.chance(0.5) {
            oracle.lookup(&k, now);
            sharded.lookup(&k, now);
        } else {
            let label = rng.index(6) as u32;
            let confidence = rng.uniform(0.2, 1.0);
            oracle.insert(
                k.clone(),
                label,
                confidence,
                EntrySource::LocalInference,
                now,
            );
            sharded.insert(k, label, confidence, EntrySource::LocalInference, now);
        }
    }
    let at = SimTime::from_secs(10);
    // `capture` documents its entry order as arbitrary (it walks a hash
    // map); the sharded snapshot sorts by id. Normalize the oracle's to
    // the same order — ids themselves must still match exactly.
    let mut a = reuse::CacheSnapshot::capture(&oracle, at);
    a.entries.sort_by_key(|e| e.id);
    let b = sharded.snapshot(at);
    assert_eq!(
        a.to_json().unwrap(),
        b.to_json().unwrap(),
        "snapshots must serialize identically"
    );
}

/// Sanity check on the equivalence boundary: the gated insert path with a
/// frequency config is *allowed* to diverge (it rejects cold candidates),
/// which is exactly why goldens run with admission disabled.
#[test]
fn frequency_admission_is_the_only_divergence() {
    let config = CacheConfig::new(4).with_admission(reuse::AdmissionPolicy::admit_all());
    let mut oracle: ApproxCache<u32> = ApproxCache::new(config.clone());
    let gated: ShardedCache<u32> = ShardedCache::new(
        ConcurrentConfig::new(config)
            .with_frequency(reuse::FrequencyConfig::default())
            .with_sketch_seed(11),
    );
    let mut rng = SimRng::seed(0x0e_5555);
    let mut first_divergence = None;
    for step in 0..400u64 {
        let now = SimTime::from_millis(step * 10);
        let k = key(&mut rng);
        let label = rng.index(6) as u32;
        let a = oracle.insert(k.clone(), label, 0.9, EntrySource::LocalInference, now);
        let b = gated.insert(k, label, 0.9, EntrySource::LocalInference, now);
        if a != b {
            // Up to this point both stores held identical state, so the
            // first difference can only be the gate declining what the
            // oracle accepted. (Afterwards the contents differ and any
            // outcome may legitimately diverge.)
            assert_eq!(
                b,
                InsertOutcome::Rejected,
                "first divergence must be a gate rejection, step {step}"
            );
            first_divergence = Some(step);
            break;
        }
    }
    assert!(
        first_divergence.is_some(),
        "a full cache under churn must exercise the gate"
    );
    assert!(gated.stats().sketch_rejected > 0);
}
