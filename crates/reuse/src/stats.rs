//! Per-cache operation counters.

use serde::{Deserialize, Serialize};

use ann::MissReason;

/// Counts of everything a cache did, kept cheap enough to update on every
/// operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Misses because the index was empty.
    pub miss_empty: u64,
    /// Misses because the nearest neighbour was too far.
    pub miss_too_far: u64,
    /// Misses because the neighbour labels were not homogeneous.
    pub miss_not_homogeneous: u64,
    /// Misses because too few neighbours were within the threshold.
    pub miss_insufficient_support: u64,
    /// Successful inserts of new entries.
    pub inserts: u64,
    /// Inserts absorbed as refreshes of near-duplicate entries.
    pub refreshes: u64,
    /// Inserts rejected by admission control.
    pub rejected: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Entries explicitly removed.
    pub removals: u64,
    /// Entries dropped by age-based expiry sweeps.
    pub expirations: u64,
    /// Inserts rejected by the TinyLFU frequency sketch (candidate's
    /// estimated frequency did not beat the victim's). Zero values are
    /// skipped during serialization so snapshots from stores without
    /// frequency admission stay byte-identical.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub sketch_rejected: u64,
    /// Capacity evictions chosen by the cost-aware weighter rather than
    /// the configured policy ordering. Zero-skip, as above.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub weight_evictions: u64,
}

/// Serde helper for the zero-skip fields above.
fn is_zero(v: &u64) -> bool {
    *v == 0
}

impl CacheStats {
    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.miss_empty
            + self.miss_too_far
            + self.miss_not_homogeneous
            + self.miss_insufficient_support
    }

    /// Hit fraction over all lookups (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Records a miss with its reason.
    pub fn record_miss(&mut self, reason: MissReason) {
        match reason {
            MissReason::EmptyIndex => self.miss_empty += 1,
            MissReason::TooFar => self.miss_too_far += 1,
            MissReason::NotHomogeneous => self.miss_not_homogeneous += 1,
            MissReason::InsufficientSupport => self.miss_insufficient_support += 1,
        }
    }

    /// Records the start of a lookup. The matching outcome —
    /// [`record_hit`](Self::record_hit) or
    /// [`record_miss`](Self::record_miss) — must land before the stats
    /// are read, or [`is_balanced`](Self::is_balanced) reports drift.
    pub fn record_lookup(&mut self) {
        self.lookups += 1;
    }

    /// Records a lookup that hit, checking the balance invariant.
    pub fn record_hit(&mut self) {
        self.hits += 1;
        self.debug_assert_balanced();
    }

    /// Records a successful insert of a new entry.
    pub fn record_insert(&mut self) {
        self.inserts += 1;
    }

    /// Records an insert absorbed as a refresh of a near-duplicate.
    pub fn record_refresh(&mut self) {
        self.refreshes += 1;
    }

    /// Records an insert rejected by admission control.
    pub fn record_rejected(&mut self) {
        self.rejected += 1;
    }

    /// Records a capacity eviction.
    pub fn record_eviction(&mut self) {
        self.evictions += 1;
    }

    /// Records an explicit removal.
    pub fn record_removal(&mut self) {
        self.removals += 1;
    }

    /// Records `n` entries dropped by one age-based expiry sweep.
    pub fn record_expirations(&mut self, n: u64) {
        self.expirations += n;
    }

    /// Records an insert rejected by the TinyLFU frequency sketch.
    pub fn record_sketch_rejected(&mut self) {
        self.sketch_rejected += 1;
    }

    /// Records a capacity eviction chosen by the cost-aware weighter.
    /// Always paired with [`record_eviction`](Self::record_eviction),
    /// which counts *all* capacity evictions.
    pub fn record_weight_eviction(&mut self) {
        self.weight_evictions += 1;
    }

    /// The lookup-accounting invariant: every lookup ended as exactly one
    /// hit or one categorized miss, and [`misses`](Self::misses) is
    /// consistent with the hit/lookup totals.
    pub fn is_balanced(&self) -> bool {
        self.lookups == self.hits + self.misses()
            && self.lookups >= self.hits
            && self.misses() == self.lookups - self.hits
    }

    /// Debug-build check that [`is_balanced`](Self::is_balanced) holds.
    /// Called at every lookup-counter increment site so a drifting
    /// counter panics at the increment that broke it, not at the end of
    /// a run.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the invariant is violated.
    #[inline]
    pub fn debug_assert_balanced(&self) {
        debug_assert!(
            self.is_balanced(),
            "cache stats out of balance: lookups={} hits={} misses={} \
             [empty={} far={} hetero={} support={}]",
            self.lookups,
            self.hits,
            self.misses(),
            self.miss_empty,
            self.miss_too_far,
            self.miss_not_homogeneous,
            self.miss_insufficient_support,
        );
    }

    /// Adds another stats block (e.g. aggregating across devices).
    pub fn merge(&mut self, other: &CacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.miss_empty += other.miss_empty;
        self.miss_too_far += other.miss_too_far;
        self.miss_not_homogeneous += other.miss_not_homogeneous;
        self.miss_insufficient_support += other.miss_insufficient_support;
        self.inserts += other.inserts;
        self.refreshes += other.refreshes;
        self.rejected += other.rejected;
        self.evictions += other.evictions;
        self.removals += other.removals;
        self.expirations += other.expirations;
        self.sketch_rejected += other.sketch_rejected;
        self.weight_evictions += other.weight_evictions;
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lookups={} hits={} ({:.1}%) misses={} [far={} hetero={} support={} empty={}] \
             inserts={} refreshes={} rejected={} evictions={} removals={}",
            self.lookups,
            self.hits,
            self.hit_rate() * 100.0,
            self.misses(),
            self.miss_too_far,
            self.miss_not_homogeneous,
            self.miss_insufficient_support,
            self.miss_empty,
            self.inserts,
            self.refreshes,
            self.rejected,
            self.evictions,
            self.removals
        )
    }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn misses_sum_by_reason() {
        let mut s = CacheStats::default();
        s.record_miss(MissReason::TooFar);
        s.record_miss(MissReason::TooFar);
        s.record_miss(MissReason::NotHomogeneous);
        s.record_miss(MissReason::EmptyIndex);
        s.record_miss(MissReason::InsufficientSupport);
        assert_eq!(s.misses(), 5);
        assert_eq!(s.miss_too_far, 2);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CacheStats {
            lookups: 10,
            hits: 6,
            ..CacheStats::default()
        };
        let b = CacheStats {
            lookups: 10,
            hits: 2,
            evictions: 3,
            ..CacheStats::default()
        };
        a.merge(&b);
        assert_eq!(a.lookups, 20);
        assert_eq!(a.hits, 8);
        assert_eq!(a.evictions, 3);
        assert!((a.hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn balance_detects_a_drifting_counter() {
        let mut s = CacheStats::default();
        assert!(s.is_balanced());
        s.lookups += 1;
        s.hits += 1;
        assert!(s.is_balanced());
        s.lookups += 1;
        s.record_miss(MissReason::TooFar);
        assert!(s.is_balanced());
        // A lookup whose outcome was never recorded breaks the invariant.
        s.lookups += 1;
        assert!(!s.is_balanced());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cache stats out of balance")]
    fn debug_assert_fires_on_imbalance() {
        let stats = CacheStats {
            lookups: 3,
            hits: 1,
            ..CacheStats::default()
        };
        stats.debug_assert_balanced();
    }

    #[test]
    fn new_counters_are_zero_skipped_in_serialization() {
        // Golden snapshots predate these fields; a store that never used
        // frequency admission or weighted eviction must serialize exactly
        // as before.
        let s = CacheStats {
            lookups: 2,
            hits: 2,
            ..CacheStats::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("sketch_rejected"));
        assert!(!json.contains("weight_evictions"));
        // Non-zero values round-trip, and old payloads default to zero.
        let mut s = s;
        s.record_sketch_rejected();
        s.record_weight_eviction();
        let json = serde_json::to_string(&s).unwrap();
        let back: CacheStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.sketch_rejected, 1);
        assert_eq!(back.weight_evictions, 1);
        let old: CacheStats = serde_json::from_str(
            "{\"lookups\":1,\"hits\":1,\
             \"miss_empty\":0,\"miss_too_far\":0,\"miss_not_homogeneous\":0,\
             \"miss_insufficient_support\":0,\"inserts\":0,\"refreshes\":0,\
             \"rejected\":0,\"evictions\":0,\"removals\":0,\"expirations\":0}",
        )
        .unwrap();
        assert_eq!(old.sketch_rejected, 0);
    }

    #[test]
    fn display_is_informative() {
        let mut s = CacheStats {
            lookups: 4,
            hits: 3,
            ..CacheStats::default()
        };
        s.record_miss(MissReason::TooFar);
        let text = s.to_string();
        assert!(text.contains("hits=3"));
        assert!(text.contains("75.0%"));
        assert!(text.contains("far=1"));
    }
}
