//! Distance-threshold calibration.
//!
//! The hit test's distance threshold is the system's central knob: too
//! tight and reuse opportunities are wasted; too loose and wrong labels
//! are served. Deployments calibrate it from two empirical distance
//! samples — distances between keys of the *same* subject under small view
//! changes, and distances between keys of *different* classes — and pick
//! the cut that minimizes total classification error between the two
//! distributions.

use simcore::stats::percentile_sorted;

/// The result of a calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// The chosen distance threshold.
    pub threshold: f64,
    /// Fraction of same-subject pairs that would be (correctly) accepted.
    pub same_acceptance: f64,
    /// Fraction of cross-class pairs that would be (wrongly) accepted.
    pub cross_acceptance: f64,
}

/// Picks the threshold minimizing `(rejected same) + (accepted cross)`
/// over a dense sweep of candidate cuts.
///
/// # Panics
///
/// Panics if either sample set is empty or contains non-finite values.
pub fn calibrate_threshold(same_subject: &[f64], cross_class: &[f64]) -> Calibration {
    assert!(
        !same_subject.is_empty() && !cross_class.is_empty(),
        "calibrate_threshold: both sample sets must be non-empty"
    );
    assert!(
        same_subject
            .iter()
            .chain(cross_class)
            .all(|d| d.is_finite() && *d >= 0.0),
        "calibrate_threshold: distances must be finite and non-negative"
    );
    let mut same = same_subject.to_vec();
    let mut cross = cross_class.to_vec();
    same.sort_by(f64::total_cmp);
    cross.sort_by(f64::total_cmp);

    // Candidate cuts: all observed distances (the error function only
    // changes at sample points) plus the midpoint between the supports.
    let mut candidates: Vec<f64> = same.iter().chain(cross.iter()).copied().collect();
    candidates.push((percentile_sorted(&same, 0.99) + percentile_sorted(&cross, 0.01)) / 2.0);
    candidates.sort_by(f64::total_cmp);
    candidates.dedup();

    let mut best = Calibration {
        // Non-empty by the asserts above; 0.0 is an inert fallback.
        threshold: candidates.first().copied().unwrap_or(0.0),
        same_acceptance: 0.0,
        cross_acceptance: 0.0,
    };
    let mut best_error = f64::INFINITY;
    for &cut in &candidates {
        let same_accepted = same.partition_point(|&d| d <= cut) as f64 / same.len() as f64;
        let cross_accepted = cross.partition_point(|&d| d <= cut) as f64 / cross.len() as f64;
        // Equal-weight error; a deployment could weight false accepts
        // higher, which only shifts the cut left.
        let error = (1.0 - same_accepted) + cross_accepted;
        if error < best_error {
            best_error = error;
            best = Calibration {
                threshold: cut,
                same_acceptance: same_accepted,
                cross_acceptance: cross_accepted,
            };
        }
    }
    // The error function is flat between consecutive sample points, so any
    // cut in [best, next sample) is equally optimal on the calibration
    // data. Centre the cut in that interval for robustness: fresh
    // same-subject pairs then have slack instead of sitting exactly at the
    // decision boundary.
    let next_sample = same
        .iter()
        .chain(cross.iter())
        .copied()
        .filter(|&d| d > best.threshold)
        .fold(f64::INFINITY, f64::min);
    if next_sample.is_finite() {
        best.threshold = (best.threshold + next_sample) / 2.0;
    }
    best
}

/// A simple parametric alternative: `mean(same) + sigmas · std(same)`,
/// used when no cross-class sample is available (e.g. cold start).
///
/// # Panics
///
/// Panics if `same_subject` is empty, contains non-finite values, or
/// `sigmas` is negative.
pub fn threshold_from_same_distribution(same_subject: &[f64], sigmas: f64) -> f64 {
    assert!(
        !same_subject.is_empty(),
        "threshold_from_same_distribution: sample must be non-empty"
    );
    assert!(
        sigmas >= 0.0,
        "threshold_from_same_distribution: sigmas must be non-negative"
    );
    let summary = simcore::Summary::from_samples(same_subject);
    summary.mean + sigmas * summary.std_dev
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use simcore::SimRng;

    #[test]
    fn separable_distributions_get_a_clean_cut() {
        let mut rng = SimRng::seed(1);
        let same: Vec<f64> = (0..500).map(|_| rng.normal(0.5, 0.1).abs()).collect();
        let cross: Vec<f64> = (0..500).map(|_| rng.normal(5.0, 0.5).abs()).collect();
        let cal = calibrate_threshold(&same, &cross);
        assert!(
            cal.threshold > 0.8 && cal.threshold < 4.0,
            "threshold {}",
            cal.threshold
        );
        assert!(cal.same_acceptance > 0.99);
        assert!(cal.cross_acceptance < 0.01);
    }

    #[test]
    fn overlapping_distributions_balance_errors() {
        let mut rng = SimRng::seed(2);
        let same: Vec<f64> = (0..2000).map(|_| rng.normal(1.0, 0.3).abs()).collect();
        let cross: Vec<f64> = (0..2000).map(|_| rng.normal(2.0, 0.3).abs()).collect();
        let cal = calibrate_threshold(&same, &cross);
        // Optimal cut for equal-variance Gaussians is the midpoint.
        assert!(
            (cal.threshold - 1.5).abs() < 0.15,
            "threshold {}",
            cal.threshold
        );
        assert!(cal.same_acceptance > 0.9);
        assert!(cal.cross_acceptance < 0.1);
    }

    #[test]
    fn degenerate_single_points_work() {
        let cal = calibrate_threshold(&[1.0], &[3.0]);
        assert!(cal.threshold >= 1.0 && cal.threshold < 3.0);
        assert_eq!(cal.same_acceptance, 1.0);
        assert_eq!(cal.cross_acceptance, 0.0);
    }

    #[test]
    fn parametric_threshold_is_mean_plus_sigmas() {
        let same = [1.0, 1.0, 3.0, 3.0]; // mean 2, std 1
        let t = threshold_from_same_distribution(&same, 2.0);
        assert!((t - 4.0).abs() < 1e-12);
        let t0 = threshold_from_same_distribution(&same, 0.0);
        assert!((t0 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn empty_samples_rejected() {
        calibrate_threshold(&[], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_distances_rejected() {
        calibrate_threshold(&[-1.0], &[1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The calibrated threshold always lies within the combined sample
        /// range, and acceptance fractions are consistent with it.
        #[test]
        fn calibration_consistency(
            same in proptest::collection::vec(0.0f64..2.0, 1..100),
            cross in proptest::collection::vec(0.0f64..10.0, 1..100),
        ) {
            let cal = calibrate_threshold(&same, &cross);
            let lo = same.iter().chain(&cross).cloned().fold(f64::INFINITY, f64::min);
            let hi = same.iter().chain(&cross).cloned().fold(0.0f64, f64::max);
            prop_assert!(cal.threshold >= lo - 1e-9 && cal.threshold <= hi + 1e-9);
            let same_frac = same.iter().filter(|&&d| d <= cal.threshold).count() as f64
                / same.len() as f64;
            prop_assert!((same_frac - cal.same_acceptance).abs() < 1e-9);
        }
    }
}
