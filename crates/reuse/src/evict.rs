//! Victim selection when the cache is full.

use serde::{Deserialize, Serialize};

use simcore::{SimDuration, SimTime};

use crate::entry::{CacheEntry, EntryId};

/// Which entry to discard when capacity is reached.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Least recently used: evict the entry idle the longest. The right
    /// default for video streams, whose reuse is strongly recency-biased.
    Lru,
    /// Least frequently used: evict the entry with the fewest hits,
    /// breaking ties by recency. Protects long-lived hot subjects.
    Lfu,
    /// Expiry-first: evict any entry older than `max_age`; if none is
    /// expired, fall back to LRU. Bounds staleness in churning scenes.
    Ttl {
        /// Age beyond which an entry is considered stale.
        max_age: SimDuration,
    },
    /// Utility-aware: evict the entry with the lowest
    /// `(uses + 1) · confidence / (idle_seconds + 1)` — a combined
    /// recency × frequency × quality score.
    Utility,
}

impl EvictionPolicy {
    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::Ttl { .. } => "ttl",
            EvictionPolicy::Utility => "utility",
        }
    }

    /// The policies compared by the eviction experiment.
    pub fn standard_set() -> [EvictionPolicy; 4] {
        [
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::Ttl {
                max_age: SimDuration::from_secs(30),
            },
            EvictionPolicy::Utility,
        ]
    }

    /// Picks the victim among `entries` at time `now`. Returns `None` for
    /// an empty iterator.
    pub fn choose_victim<'a, L: 'a>(
        &self,
        entries: impl Iterator<Item = &'a CacheEntry<L>>,
        now: SimTime,
    ) -> Option<EntryId> {
        match self {
            EvictionPolicy::Lru => entries.min_by_key(|e| (e.last_used, e.id)).map(|e| e.id),
            EvictionPolicy::Lfu => entries
                .min_by_key(|e| (e.uses, e.last_used, e.id))
                .map(|e| e.id),
            EvictionPolicy::Ttl { max_age } => {
                // One pass, each ordering key built exactly once per
                // entry: the oldest expired entry wins outright; with
                // nothing expired the fallback is the same `(last_used,
                // id)` minimum Lru computes.
                let mut oldest_expired: Option<(SimTime, EntryId)> = None;
                let mut lru_fallback: Option<(SimTime, EntryId)> = None;
                for e in entries {
                    let by_age = (e.inserted_at, e.id);
                    let by_recency = (e.last_used, e.id);
                    if e.age(now) > *max_age && oldest_expired.is_none_or(|b| by_age < b) {
                        oldest_expired = Some(by_age);
                    }
                    if lru_fallback.is_none_or(|b| by_recency < b) {
                        lru_fallback = Some(by_recency);
                    }
                }
                oldest_expired.or(lru_fallback).map(|(_, id)| id)
            }
            EvictionPolicy::Utility => entries
                .map(|e| {
                    let idle = e.idle(now).as_secs_f64();
                    let utility = (e.uses as f64 + 1.0) * e.confidence / (idle + 1.0);
                    (e, utility)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)))
                .map(|(e, _)| e.id),
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntrySource;
    use features::FeatureVector;

    fn entry(id: u64, inserted_ms: u64, used_ms: u64, uses: u64, conf: f64) -> CacheEntry<u32> {
        CacheEntry {
            id: EntryId(id),
            key: FeatureVector::zeros(1),
            label: 0,
            confidence: conf,
            inserted_at: SimTime::from_millis(inserted_ms),
            last_used: SimTime::from_millis(used_ms),
            uses,
            source: EntrySource::LocalInference,
        }
    }

    #[test]
    fn lru_evicts_longest_idle() {
        let entries = [
            entry(1, 0, 500, 9, 0.9),
            entry(2, 0, 100, 9, 0.9), // idle longest
            entry(3, 0, 900, 9, 0.9),
        ];
        let victim = EvictionPolicy::Lru
            .choose_victim(entries.iter(), SimTime::from_millis(1_000))
            .unwrap();
        assert_eq!(victim, EntryId(2));
    }

    #[test]
    fn lfu_evicts_fewest_uses_with_lru_tiebreak() {
        let entries = [
            entry(1, 0, 500, 2, 0.9),
            entry(2, 0, 100, 1, 0.9),
            entry(3, 0, 50, 1, 0.9), // same uses as 2, older use
        ];
        let victim = EvictionPolicy::Lfu
            .choose_victim(entries.iter(), SimTime::from_millis(1_000))
            .unwrap();
        assert_eq!(victim, EntryId(3));
    }

    #[test]
    fn ttl_prefers_expired_entries() {
        let policy = EvictionPolicy::Ttl {
            max_age: SimDuration::from_millis(400),
        };
        let entries = [
            entry(1, 0, 990, 9, 0.9),   // expired (age 1000), very recently used
            entry(2, 800, 810, 0, 0.9), // fresh, cold
        ];
        let victim = policy
            .choose_victim(entries.iter(), SimTime::from_millis(1_000))
            .unwrap();
        assert_eq!(victim, EntryId(1), "expired entry beats cold fresh one");
    }

    #[test]
    fn ttl_expired_entry_that_is_also_the_lru_entry() {
        // Regression: an entry can be both expired *and* the LRU minimum.
        // The expiry branch must claim it via the `(inserted_at, id)`
        // ordering without the fallback bookkeeping interfering, and the
        // choice must stay stable when a second expired entry with a
        // larger id but older insertion exists.
        let policy = EvictionPolicy::Ttl {
            max_age: SimDuration::from_millis(300),
        };
        let entries = [
            entry(4, 100, 150, 1, 0.9), // expired (age 900), also the LRU entry
            entry(7, 50, 700, 5, 0.9),  // expired (age 950), older insertion
            entry(9, 900, 950, 0, 0.9), // fresh
        ];
        let victim = policy
            .choose_victim(entries.iter(), SimTime::from_millis(1_000))
            .unwrap();
        assert_eq!(
            victim,
            EntryId(7),
            "oldest insertion wins among expired entries, even when another \
             expired entry is the LRU minimum"
        );
        // With only the doubly-minimal entry expired, it is still chosen.
        let entries = [entry(4, 100, 150, 1, 0.9), entry(9, 900, 950, 0, 0.9)];
        let victim = policy
            .choose_victim(entries.iter(), SimTime::from_millis(1_000))
            .unwrap();
        assert_eq!(victim, EntryId(4));
    }

    #[test]
    fn ttl_fallback_matches_lru_exactly_when_nothing_expired() {
        // The fallback ordering must be *identical* to Lru's, including
        // the id tiebreak on equal `last_used`.
        let entries = [
            entry(8, 0, 100, 3, 0.9),
            entry(2, 0, 100, 9, 0.9), // ties on last_used; lower id wins
            entry(5, 0, 400, 0, 0.9),
        ];
        let now = SimTime::from_millis(1_000);
        let ttl = EvictionPolicy::Ttl {
            max_age: SimDuration::from_secs(100),
        };
        let lru_pick = EvictionPolicy::Lru.choose_victim(entries.iter(), now);
        let ttl_pick = ttl.choose_victim(entries.iter(), now);
        assert_eq!(ttl_pick, lru_pick);
        assert_eq!(ttl_pick, Some(EntryId(2)));
    }

    #[test]
    fn ttl_falls_back_to_lru_when_nothing_expired() {
        let policy = EvictionPolicy::Ttl {
            max_age: SimDuration::from_secs(100),
        };
        let entries = [entry(1, 0, 500, 9, 0.9), entry(2, 0, 100, 9, 0.9)];
        let victim = policy
            .choose_victim(entries.iter(), SimTime::from_millis(1_000))
            .unwrap();
        assert_eq!(victim, EntryId(2));
    }

    #[test]
    fn utility_trades_recency_frequency_confidence() {
        let entries = [
            entry(1, 0, 900, 50, 0.95), // hot and fresh: high utility
            entry(2, 0, 900, 0, 0.2),   // fresh but useless and dubious
            entry(3, 0, 0, 50, 0.95),   // hot historically but idle 1 s
        ];
        let victim = EvictionPolicy::Utility
            .choose_victim(entries.iter(), SimTime::from_millis(1_000))
            .unwrap();
        assert_eq!(victim, EntryId(2));
    }

    #[test]
    fn empty_iterator_yields_none() {
        let none: Option<EntryId> = EvictionPolicy::Lru
            .choose_victim(std::iter::empty::<&CacheEntry<u32>>(), SimTime::ZERO);
        assert_eq!(none, None);
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        // Fully identical metadata: lowest id wins under every policy.
        let entries = [
            entry(5, 0, 0, 0, 0.5),
            entry(2, 0, 0, 0, 0.5),
            entry(9, 0, 0, 0, 0.5),
        ];
        for policy in EvictionPolicy::standard_set() {
            let victim = policy
                .choose_victim(entries.iter(), SimTime::from_millis(10))
                .unwrap();
            assert_eq!(victim, EntryId(2), "policy {policy}");
        }
    }

    #[test]
    fn names() {
        assert_eq!(EvictionPolicy::Lru.to_string(), "lru");
        assert_eq!(
            EvictionPolicy::Ttl {
                max_age: SimDuration::ZERO
            }
            .name(),
            "ttl"
        );
        assert_eq!(EvictionPolicy::standard_set().len(), 4);
    }
}
