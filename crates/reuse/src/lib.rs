//! The in-memory approximate result cache.
//!
//! This crate is the data structure at the heart of the system: a bounded,
//! in-memory map from *approximate* feature-space keys to recognition
//! results. Unlike a hash cache, a lookup succeeds when the query is
//! *close enough* to cached keys with a *homogeneous* label (the adaptive
//! k-NN test from the `ann` crate), so one inference answers many
//! subsequent frames.
//!
//! - [`ApproxCache`] — the store: pluggable ANN index, bounded capacity,
//!   eviction, admission control, per-operation statistics.
//! - [`EvictionPolicy`] — LRU / LFU / TTL / utility-aware victim choice.
//! - [`AdmissionPolicy`] — confidence floor plus near-duplicate refresh
//!   (a new observation of a cached subject refreshes the entry instead of
//!   polluting the index with clones).
//! - [`calibrate`] — distance-threshold calibration from sample
//!   same-subject vs cross-class distances.
//! - [`concurrent`] — the sharded concurrent core: per-shard locks and
//!   indexes, TinyLFU frequency admission (lossy access ring → count-min
//!   sketch behind a bloom doorkeeper), deterministic shard routing.
//! - [`weight`] — cost-aware eviction weights (entry bytes × expected
//!   recompute latency), so an expensive model's result outlives a cheap
//!   one's.
//!
//! # Example
//!
//! ```
//! use reuse::{ApproxCache, CacheConfig, EntrySource, LookupResult};
//! use features::FeatureVector;
//! use simcore::SimTime;
//!
//! let mut cache: ApproxCache<u32> = ApproxCache::new(CacheConfig::new(2));
//! let key = FeatureVector::from_vec(vec![1.0, 0.0]).unwrap();
//! cache.insert(key.clone(), 7, 0.9, EntrySource::LocalInference, SimTime::ZERO);
//! let near = FeatureVector::from_vec(vec![1.05, 0.0]).unwrap();
//! match cache.lookup(&near, SimTime::from_millis(33)) {
//!     LookupResult::Hit { label, .. } => assert_eq!(label, 7),
//!     LookupResult::Miss(reason) => panic!("expected hit, got {reason}"),
//! }
//! ```

pub mod admission;
pub mod calibrate;
pub mod concurrent;
pub mod entry;
pub mod evict;
pub mod shared;
pub mod snapshot;
pub mod stats;
pub mod store;
mod victim;
pub mod weight;

pub use admission::AdmissionPolicy;
pub use concurrent::{ConcurrentConfig, FrequencyConfig, ShardedCache};
pub use entry::{CacheEntry, EntryId, EntrySource};
pub use evict::EvictionPolicy;
pub use shared::SharedCache;
pub use snapshot::CacheSnapshot;
pub use stats::CacheStats;
pub use store::{
    ApproxCache, CacheConfig, FrequencyGate, IndexConfig, IndexMigration, InsertOutcome,
    LookupResult,
};
pub use weight::{RecomputeCostWeighter, Weighter};
