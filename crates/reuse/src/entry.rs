//! Cache entries and their provenance.

use serde::{Deserialize, Serialize};

use features::FeatureVector;
use simcore::SimTime;

/// Identifier of a cache entry, unique within one cache for its lifetime
/// (ids are never recycled, so a stale id can never alias a new entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntryId(pub u64);

impl std::fmt::Display for EntryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "entry-{}", self.0)
    }
}

/// Where a cached result came from — reported in the hit-source breakdown
/// experiment and usable by admission policies (peer results may be held
/// to a higher confidence bar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntrySource {
    /// Produced by this device's own DNN.
    LocalInference,
    /// Received from a nearby device.
    Peer,
}

impl std::fmt::Display for EntrySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EntrySource::LocalInference => "local-inference",
            EntrySource::Peer => "peer",
        };
        f.write_str(s)
    }
}

/// One cached recognition result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry<L> {
    /// Stable identifier within the owning cache.
    pub id: EntryId,
    /// The feature-space key.
    pub key: FeatureVector,
    /// The cached recognition label.
    pub label: L,
    /// Confidence the producer attached to the result.
    pub confidence: f64,
    /// When the entry was first inserted.
    pub inserted_at: SimTime,
    /// When the entry last served a hit or was refreshed.
    pub last_used: SimTime,
    /// Number of hits served plus refreshes absorbed.
    pub uses: u64,
    /// Provenance.
    pub source: EntrySource,
}

impl<L> CacheEntry<L> {
    /// Age since insertion at `now`.
    pub fn age(&self, now: SimTime) -> simcore::SimDuration {
        now.saturating_duration_since(self.inserted_at)
    }

    /// Time since the entry last served a hit.
    pub fn idle(&self, now: SimTime) -> simcore::SimDuration {
        now.saturating_duration_since(self.last_used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn age_and_idle_track_timestamps() {
        let e = CacheEntry {
            id: EntryId(1),
            key: FeatureVector::zeros(2),
            label: 3u32,
            confidence: 0.9,
            inserted_at: SimTime::from_millis(100),
            last_used: SimTime::from_millis(400),
            uses: 2,
            source: EntrySource::LocalInference,
        };
        let now = SimTime::from_millis(1_000);
        assert_eq!(e.age(now), SimDuration::from_millis(900));
        assert_eq!(e.idle(now), SimDuration::from_millis(600));
        // Saturating: clock before insertion yields zero, not panic.
        assert_eq!(e.age(SimTime::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn displays() {
        assert_eq!(EntryId(5).to_string(), "entry-5");
        assert_eq!(EntrySource::Peer.to_string(), "peer");
        assert_eq!(EntrySource::LocalInference.to_string(), "local-inference");
    }
}
