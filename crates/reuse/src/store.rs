//! The approximate cache store.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

pub use ann::IndexConfig;
use ann::{AknnConfig, AknnOutcome, DecideScratch, IndexScratch, MissReason, Neighbor, NnIndex};
use features::FeatureVector;
use simcore::SimTime;

use crate::admission::AdmissionPolicy;
use crate::entry::{CacheEntry, EntryId, EntrySource};
use crate::evict::EvictionPolicy;
use crate::stats::CacheStats;
use crate::victim::{EntryMeta, VictimChoice, VictimIndex};
use crate::weight::Weighter;

/// One-way adaptive index migration.
///
/// A cache starts on the configured [`CacheConfig::index`] (linear scan
/// by default — unbeatable below a few hundred entries) and, once it has
/// held `at_len` entries, rebuilds itself onto `target` (typically NSW,
/// whose lookup cost stays flat as the cache grows). The rebuild
/// re-inserts entries in ascending id order, so the handoff is
/// deterministic; before the threshold the cache is operation-for-
/// operation identical to one that never migrates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexMigration {
    /// Entry count at which the migration runs (checked after inserts).
    pub at_len: usize,
    /// The index to rebuild onto.
    pub target: IndexConfig,
}

impl IndexMigration {
    /// Validates the migration parameters.
    ///
    /// # Panics
    ///
    /// Panics if `at_len == 0` or the target tuning is invalid.
    pub fn validate(&self) {
        assert!(self.at_len > 0, "IndexMigration: at_len must be positive");
        self.target.validate();
    }
}

/// Configuration of an [`ApproxCache`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Maximum number of entries.
    pub capacity: usize,
    /// The hit test.
    pub aknn: AknnConfig,
    /// Victim selection at capacity.
    pub eviction: EvictionPolicy,
    /// What may enter the cache.
    pub admission: AdmissionPolicy,
    /// Backing index structure (the *starting* index when a migration is
    /// configured).
    pub index: IndexConfig,
    /// Optional one-way migration to a second index once the cache has
    /// grown past a threshold. `None` (the default) keeps the configured
    /// index for the cache's whole life.
    #[serde(default)]
    pub migration: Option<IndexMigration>,
}

impl CacheConfig {
    /// A config with the given capacity and defaults everywhere else
    /// (A-kNN defaults, LRU, default admission, linear index).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> CacheConfig {
        let config = CacheConfig {
            capacity,
            aknn: AknnConfig::default(),
            eviction: EvictionPolicy::Lru,
            admission: AdmissionPolicy::default(),
            index: IndexConfig::Linear,
            migration: None,
        };
        config.validate();
        config
    }

    /// Replaces the hit-test parameters.
    pub fn with_aknn(mut self, aknn: AknnConfig) -> CacheConfig {
        self.aknn = aknn;
        self.validate();
        self
    }

    /// Replaces the eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> CacheConfig {
        self.eviction = eviction;
        self
    }

    /// Replaces the admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> CacheConfig {
        self.admission = admission;
        self.validate();
        self
    }

    /// Replaces the index structure.
    pub fn with_index(mut self, index: IndexConfig) -> CacheConfig {
        self.index = index;
        self
    }

    /// Enables the one-way size-triggered index migration.
    pub fn with_migration(mut self, migration: IndexMigration) -> CacheConfig {
        self.migration = Some(migration);
        self.validate();
        self
    }

    /// Validates all nested policies.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero or a nested policy is invalid.
    pub fn validate(&self) {
        assert!(self.capacity > 0, "CacheConfig: capacity must be positive");
        self.aknn.validate();
        self.admission.validate();
        self.index.validate();
        if let Some(migration) = &self.migration {
            migration.validate();
        }
    }
}

/// The outcome of a lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LookupResult<L> {
    /// The cache answered.
    Hit {
        /// The reused label.
        label: L,
        /// The entry that served the hit (nearest dominant-label entry).
        entry: EntryId,
        /// Distance of the overall nearest neighbour.
        nearest_distance: f64,
        /// Votes for the dominant label.
        support: usize,
        /// Dominant label's vote fraction.
        homogeneity: f64,
    },
    /// The cache could not answer.
    Miss(MissReason),
}

impl<L> LookupResult<L> {
    /// True for hits.
    pub fn is_hit(&self) -> bool {
        matches!(self, LookupResult::Hit { .. })
    }

    /// The label, if this is a hit.
    pub fn label(&self) -> Option<&L> {
        match self {
            LookupResult::Hit { label, .. } => Some(label),
            LookupResult::Miss(_) => None,
        }
    }
}

/// The outcome of an insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// A new entry was created.
    Inserted(EntryId),
    /// An existing near-duplicate entry absorbed the observation.
    Refreshed(EntryId),
    /// Admission control declined the result.
    Rejected,
}

impl InsertOutcome {
    /// The affected entry, unless rejected.
    pub fn entry(&self) -> Option<EntryId> {
        match self {
            InsertOutcome::Inserted(id) | InsertOutcome::Refreshed(id) => Some(*id),
            InsertOutcome::Rejected => None,
        }
    }
}

/// Frequency evidence consulted at the eviction point of a gated insert
/// (TinyLFU admission): the candidate only displaces the victim when its
/// estimated access frequency strictly beats the victim's.
pub struct FrequencyGate<'a> {
    /// Estimated access frequency of the candidate's routing signature.
    pub candidate: u64,
    /// Estimates the access frequency of a cached entry from its key
    /// (the caller re-derives the routing signature).
    pub estimate: &'a dyn Fn(&FeatureVector) -> u64,
}

impl fmt::Debug for FrequencyGate<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrequencyGate")
            .field("candidate", &self.candidate)
            .finish_non_exhaustive()
    }
}

/// Reusable per-lookup buffers. Lookups run once per frame; after the
/// buffers reach their working size (bounded by the hit test's `k`), the
/// whole lookup path is allocation-free.
#[derive(Debug)]
struct LookupScratch<L> {
    /// The index's own working memory (candidate buffers, visit stamps,
    /// frontier heap — whatever the live index family needs).
    index: IndexScratch,
    /// Raw index results, filled by `nearest_into`.
    neighbors: Vec<Neighbor>,
    /// Neighbours joined with their entry's label: `(distance, label, id)`.
    labeled: Vec<(f64, L, u64)>,
    /// The hit test's own buffers.
    decide: DecideScratch<L>,
}

impl<L> Default for LookupScratch<L> {
    fn default() -> Self {
        LookupScratch {
            index: IndexScratch::new(),
            neighbors: Vec::new(),
            labeled: Vec::new(),
            decide: DecideScratch::new(),
        }
    }
}

/// A bounded in-memory map from approximate feature keys to recognition
/// labels.
///
/// `L` is the label type (the reproduction uses `scene::ClassId`; anything
/// `Copy + Eq + Hash` works).
///
/// See the [crate docs](crate) for a usage example.
pub struct ApproxCache<L> {
    config: CacheConfig,
    index: Option<Box<dyn NnIndex>>,
    entries: HashMap<u64, CacheEntry<L>>,
    /// Incremental eviction metadata mirroring `entries` — victim
    /// selection is O(log n) instead of a full scan (see [`VictimIndex`]).
    victims: VictimIndex,
    /// When set, eviction ignores the policy ordering and drops the
    /// lowest-weight entry first (cost-aware mode).
    weighter: Option<Arc<dyn Weighter<L>>>,
    next_id: u64,
    /// Id allocation step; > 1 when this store is one shard of a
    /// [`ShardedCache`](crate::concurrent::ShardedCache), so shards mint
    /// disjoint ids without coordinating.
    id_stride: u64,
    stats: CacheStats,
    scratch: LookupScratch<L>,
    /// Whether the configured [`IndexMigration`] has already run (it is
    /// one-way: once on the target index, the cache stays there).
    migrated: bool,
}

impl<L> fmt::Debug for ApproxCache<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ApproxCache")
            .field("len", &self.entries.len())
            .field("capacity", &self.config.capacity)
            .field("index", &self.config.index.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<L: Copy + Eq + Hash + fmt::Debug> ApproxCache<L> {
    /// Creates an empty cache. The index dimension is fixed by the first
    /// inserted key.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(config: CacheConfig) -> ApproxCache<L> {
        config.validate();
        let victims = VictimIndex::new(config.eviction, false);
        ApproxCache {
            config,
            index: None,
            entries: HashMap::new(),
            victims,
            weighter: None,
            next_id: 0,
            id_stride: 1,
            stats: CacheStats::default(),
            scratch: LookupScratch::default(),
            migrated: false,
        }
    }

    /// Restricts the ids this store mints to the arithmetic progression
    /// `offset, offset + stride, offset + 2·stride, …` — shard `i` of `S`
    /// uses `(i, S)` so ids stay globally unique without a shared
    /// counter, and `(0, 1)` (the default) reproduces the unsharded
    /// sequence `0, 1, 2, …` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`, `offset >= stride`, or the store has
    /// already minted an id.
    pub fn set_id_namespace(&mut self, offset: u64, stride: u64) {
        assert!(stride > 0, "set_id_namespace: stride must be positive");
        assert!(
            offset < stride,
            "set_id_namespace: offset {offset} must be < stride {stride}"
        );
        assert!(
            self.next_id == 0 && self.entries.is_empty(),
            "set_id_namespace: must be called before the first insert"
        );
        self.next_id = offset;
        self.id_stride = stride;
    }

    /// Switches cost-aware eviction on (`Some`) or off (`None`),
    /// rebuilding the eviction metadata for the entries already cached.
    /// While a weighter is set, capacity evictions drop the
    /// lowest-weight entry first instead of following the configured
    /// policy ordering.
    pub fn set_weighter(&mut self, weighter: Option<Arc<dyn Weighter<L>>>) {
        self.weighter = weighter;
        let mut victims = VictimIndex::new(self.config.eviction, self.weighter.is_some());
        // xtask-allow(determinism): set population; the BTreeSet orders
        // itself, so the map's iteration order is irrelevant.
        for entry in self.entries.values() {
            let weight = self.weighter.as_ref().map(|w| w.weight(entry));
            victims.on_insert(EntryMeta::of(entry), weight);
        }
        self.victims = victims;
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Operation counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The entry with `id`, if it is still cached.
    pub fn entry(&self, id: EntryId) -> Option<&CacheEntry<L>> {
        self.entries.get(&id.0)
    }

    /// Iterates over all cached entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &CacheEntry<L>> {
        // xtask-allow(determinism): callers are documented to treat the
        // order as arbitrary; every aggregation over it is order-free.
        self.entries.values()
    }

    /// The nearest cached entry to `key` with its distance, regardless of
    /// the hit test — a read-only probe (no statistics, no recency
    /// update) used by adaptive controllers to mine near-miss evidence.
    pub fn peek_nearest(&self, key: &FeatureVector) -> Option<(f64, L)> {
        let index = self.index.as_ref()?;
        let nearest = index.nearest(key, 1).into_iter().next()?;
        let entry = self.entries.get(&nearest.id)?;
        Some((nearest.distance, entry.label))
    }

    /// Looks up `key` at time `now`, updating recency metadata on a hit.
    ///
    /// # Panics
    ///
    /// Panics if `key`'s dimension differs from previously inserted keys.
    pub fn lookup(&mut self, key: &FeatureVector, now: SimTime) -> LookupResult<L> {
        self.stats.record_lookup();
        let Some(index) = &self.index else {
            self.stats.record_miss(MissReason::EmptyIndex);
            self.stats.debug_assert_balanced();
            return LookupResult::Miss(MissReason::EmptyIndex);
        };
        let LookupScratch {
            index: index_scratch,
            neighbors,
            labeled,
            decide,
        } = &mut self.scratch;
        index.nearest_into(key, self.config.aknn.k, index_scratch, neighbors);
        // Neighbours without a backing entry (an index/store desync) are
        // dropped from the vote instead of crashing the device. One pass
        // builds the labelled list that both the vote and the
        // served-entry choice read from.
        labeled.clear();
        for n in neighbors.iter() {
            if let Some(entry) = self.entries.get(&n.id) {
                labeled.push((n.distance, entry.label, n.id));
            }
        }
        match ann::aknn::decide_in(
            labeled.iter().map(|&(d, label, _)| (d, label)),
            &self.config.aknn,
            decide,
        ) {
            AknnOutcome::Hit {
                label,
                nearest_distance,
                support,
                homogeneity,
            } => {
                // Touch the nearest entry carrying the winning label. The
                // winner came from `labeled`, so a carrier exists; degrade
                // to a miss if that ever stops holding.
                let served = labeled
                    .iter()
                    .find(|&&(_, candidate, _)| candidate == label)
                    .map(|&(_, _, id)| id);
                let Some(served) = served else {
                    self.stats.record_miss(MissReason::InsufficientSupport);
                    self.stats.debug_assert_balanced();
                    return LookupResult::Miss(MissReason::InsufficientSupport);
                };
                if let Some(entry) = self.entries.get_mut(&served) {
                    let before = EntryMeta::of(entry);
                    entry.last_used = now;
                    entry.uses += 1;
                    self.victims.on_update(before, EntryMeta::of(entry));
                }
                self.stats.record_hit();
                LookupResult::Hit {
                    label,
                    entry: EntryId(served),
                    nearest_distance,
                    support,
                    homogeneity,
                }
            }
            AknnOutcome::Miss(reason) => {
                self.stats.record_miss(reason);
                self.stats.debug_assert_balanced();
                LookupResult::Miss(reason)
            }
        }
    }

    /// Inserts a result, subject to admission control and capacity.
    ///
    /// # Panics
    ///
    /// Panics if `key`'s dimension differs from previously inserted keys,
    /// or `confidence` is not finite.
    pub fn insert(
        &mut self,
        key: FeatureVector,
        label: L,
        confidence: f64,
        source: EntrySource,
        now: SimTime,
    ) -> InsertOutcome {
        self.insert_gated(key, label, confidence, source, now, None)
    }

    /// [`insert`](Self::insert) with an optional TinyLFU frequency gate,
    /// consulted only at the eviction point: when the cache is full and
    /// the candidate's estimated frequency does not strictly beat the
    /// victim's, the candidate is turned away and the victim survives —
    /// one burst of one-off keys can no longer flush the hot working
    /// set. Confidence admission and near-duplicate refresh run *before*
    /// the gate, so a refresh of a cached entry is never sketch-rejected.
    ///
    /// # Panics
    ///
    /// Panics if `key`'s dimension differs from previously inserted keys,
    /// or `confidence` is not finite.
    pub fn insert_gated(
        &mut self,
        key: FeatureVector,
        label: L,
        confidence: f64,
        source: EntrySource,
        now: SimTime,
        gate: Option<FrequencyGate<'_>>,
    ) -> InsertOutcome {
        assert!(confidence.is_finite(), "insert: confidence must be finite");
        let from_peer = source == EntrySource::Peer;
        if !self.config.admission.admits(confidence, from_peer) {
            self.stats.record_rejected();
            return InsertOutcome::Rejected;
        }
        let index = self
            .index
            .get_or_insert_with(|| ann::build(key.dim(), &self.config.index));

        // Near-duplicate refresh.
        if self.config.admission.dedup_distance > 0.0 {
            index.nearest_into(
                &key,
                1,
                &mut self.scratch.index,
                &mut self.scratch.neighbors,
            );
            if let Some(nearest) = self.scratch.neighbors.first() {
                if nearest.distance <= self.config.admission.dedup_distance {
                    if let Some(entry) = self.entries.get_mut(&nearest.id) {
                        if entry.label == label {
                            let before = EntryMeta::of(entry);
                            entry.last_used = now;
                            entry.uses += 1;
                            entry.confidence = entry.confidence.max(confidence);
                            self.victims.on_update(before, EntryMeta::of(entry));
                            self.stats.record_refresh();
                            return InsertOutcome::Refreshed(EntryId(nearest.id));
                        }
                    }
                }
            }
        }

        // Capacity: evict before inserting. The victim choice is a pure
        // minimum with an id tie-break, so the map's iteration order
        // cannot influence it.
        if self.entries.len() >= self.config.capacity {
            if let Some(victim) = self.peek_victim(now) {
                if let Some(gate) = &gate {
                    let victim_wins = self
                        .entries
                        .get(&victim.0)
                        .is_some_and(|v| gate.candidate <= (gate.estimate)(&v.key));
                    if victim_wins {
                        self.stats.record_sketch_rejected();
                        return InsertOutcome::Rejected;
                    }
                }
                let weighted = self.victims.is_weighted();
                self.remove_internal(victim);
                self.stats.record_eviction();
                if weighted {
                    self.stats.record_weight_eviction();
                }
            }
        }

        let id = EntryId(self.next_id);
        self.next_id += self.id_stride;
        self.index
            .get_or_insert_with(|| ann::build(key.dim(), &self.config.index))
            .insert(id.0, key.clone());
        let entry = CacheEntry {
            id,
            key,
            label,
            confidence,
            inserted_at: now,
            last_used: now,
            uses: 0,
            source,
        };
        let weight = self.weighter.as_ref().map(|w| w.weight(&entry));
        self.victims.on_insert(EntryMeta::of(&entry), weight);
        self.entries.insert(id.0, entry);
        self.stats.record_insert();
        self.maybe_migrate();
        InsertOutcome::Inserted(id)
    }

    /// The `kind()` of the index currently serving lookups, or the
    /// configured one while the cache is still empty — lets callers (and
    /// the handoff tests) observe whether the migration has run.
    pub fn index_kind(&self) -> &'static str {
        match &self.index {
            Some(index) => index.kind(),
            None => self.config.index.name(),
        }
    }

    /// Runs the configured one-way migration once the entry count
    /// reaches its threshold: rebuilds the target index from the live
    /// entries in ascending id order (deterministic regardless of map
    /// iteration order) and swaps it in. Lookups before the swap are
    /// untouched — the handoff changes *future* lookup latency, never
    /// past results.
    fn maybe_migrate(&mut self) {
        let Some(migration) = self.config.migration else {
            return;
        };
        if self.migrated || self.entries.len() < migration.at_len {
            return;
        }
        self.migrated = true;
        let Some(old) = &self.index else { return };
        if old.kind() == migration.target.name() {
            return;
        }
        let mut target = ann::build(old.dim(), &migration.target);
        // xtask-allow(determinism): ids are sorted before use, so the
        // map's iteration order cannot leak into the rebuilt index.
        let mut ids: Vec<u64> = self.entries.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            if let Some(entry) = self.entries.get(&id) {
                target.insert(id, entry.key.clone());
            }
        }
        self.index = Some(target);
    }

    /// The entry the next capacity eviction would drop at `now`, without
    /// dropping it. O(log n) for Lru/Lfu/Ttl and cost-aware mode; the
    /// Utility policy's score depends on `now`, so it keeps the full
    /// scan.
    pub fn peek_victim(&self, now: SimTime) -> Option<EntryId> {
        match self.victims.victim(now) {
            VictimChoice::Found(id) => Some(id),
            VictimChoice::Empty => None,
            // xtask-allow(determinism): order-free minimum with an id
            // tie-break; the map's iteration order cannot influence it.
            VictimChoice::ScanRequired => self
                .config
                .eviction
                .choose_victim(self.entries.values(), now),
        }
    }

    /// Removes an entry, returning whether it existed.
    pub fn remove(&mut self, id: EntryId) -> bool {
        let removed = self.remove_internal(id);
        if removed {
            self.stats.record_removal();
        }
        removed
    }

    fn remove_internal(&mut self, id: EntryId) -> bool {
        match self.entries.remove(&id.0) {
            Some(entry) => {
                self.victims.on_remove(EntryMeta::of(&entry));
                if let Some(index) = self.index.as_mut() {
                    index.remove(id.0);
                }
                true
            }
            None => false,
        }
    }

    /// Removes every entry (statistics are retained).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.victims.clear();
        if let Some(index) = &mut self.index {
            index.clear();
        }
    }

    /// The current A-kNN distance threshold.
    pub fn distance_threshold(&self) -> f64 {
        self.config.aknn.distance_threshold
    }

    /// Replaces the A-kNN distance threshold at runtime — the hook used
    /// by adaptive threshold controllers.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive and finite.
    pub fn set_distance_threshold(&mut self, threshold: f64) {
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "set_distance_threshold: threshold must be positive and finite, got {threshold}"
        );
        self.config.aknn.distance_threshold = threshold;
    }

    /// Removes every entry older than `max_age` at `now`, returning how
    /// many were dropped. Deployments in drifting environments run this
    /// periodically so stale keys stop occupying capacity (see the
    /// lighting-drift experiment).
    pub fn expire_older_than(&mut self, now: SimTime, max_age: simcore::SimDuration) -> usize {
        // xtask-allow(determinism): set-semantics filter; removal order
        // does not affect the surviving entries or the count.
        let victims: Vec<EntryId> = self
            .entries
            .values()
            .filter(|e| e.age(now) > max_age)
            .map(|e| e.id)
            .collect();
        for id in &victims {
            self.remove_internal(*id);
        }
        self.stats.record_expirations(victims.len() as u64);
        victims.len()
    }

    /// The entries most recently used, up to `limit`, newest first — what
    /// a device offers when a peer asks it to share its hot set.
    pub fn hottest(&self, limit: usize) -> Vec<&CacheEntry<L>> {
        // xtask-allow(determinism): sorted by a total key before use.
        let mut entries: Vec<&CacheEntry<L>> = self.entries.values().collect();
        entries.sort_by_key(|e| std::cmp::Reverse((e.last_used, e.uses, e.id)));
        entries.truncate(limit);
        entries
    }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn fv(components: &[f32]) -> FeatureVector {
        FeatureVector::from_vec(components.to_vec()).unwrap()
    }

    fn cache(capacity: usize) -> ApproxCache<u32> {
        ApproxCache::new(
            CacheConfig::new(capacity)
                .with_aknn(AknnConfig {
                    k: 3,
                    distance_threshold: 1.0,
                    homogeneity: 0.6,
                    min_support: 1,
                })
                .with_admission(AdmissionPolicy {
                    min_confidence: 0.3,
                    min_peer_confidence: 0.5,
                    dedup_distance: 0.1,
                }),
        )
    }

    fn insert_at(c: &mut ApproxCache<u32>, x: f32, label: u32, ms: u64) -> InsertOutcome {
        c.insert(
            fv(&[x, 0.0]),
            label,
            0.9,
            EntrySource::LocalInference,
            SimTime::from_millis(ms),
        )
    }

    #[test]
    fn empty_cache_misses() {
        let mut c = cache(4);
        let result = c.lookup(&fv(&[0.0, 0.0]), SimTime::ZERO);
        assert_eq!(result, LookupResult::Miss(MissReason::EmptyIndex));
        assert_eq!(c.stats().miss_empty, 1);
        assert!(!result.is_hit());
        assert_eq!(result.label(), None);
    }

    #[test]
    fn near_key_hits_far_key_misses() {
        let mut c = cache(4);
        insert_at(&mut c, 0.0, 7, 0);
        let hit = c.lookup(&fv(&[0.5, 0.0]), SimTime::from_millis(10));
        assert!(hit.is_hit());
        assert_eq!(hit.label(), Some(&7));
        let miss = c.lookup(&fv(&[5.0, 0.0]), SimTime::from_millis(20));
        assert_eq!(miss, LookupResult::Miss(MissReason::TooFar));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().miss_too_far, 1);
    }

    #[test]
    fn hit_touches_serving_entry() {
        let mut c = cache(4);
        let id = match insert_at(&mut c, 0.0, 7, 0) {
            InsertOutcome::Inserted(id) => id,
            other => panic!("{other:?}"),
        };
        c.lookup(&fv(&[0.2, 0.0]), SimTime::from_millis(500));
        let entry = c.entry(id).unwrap();
        assert_eq!(entry.uses, 1);
        assert_eq!(entry.last_used, SimTime::from_millis(500));
    }

    #[test]
    fn heterogeneous_neighbourhood_misses() {
        let mut c = cache(4);
        insert_at(&mut c, 0.0, 1, 0);
        insert_at(&mut c, 0.4, 2, 0);
        let result = c.lookup(&fv(&[0.2, 0.0]), SimTime::from_millis(10));
        assert_eq!(result, LookupResult::Miss(MissReason::NotHomogeneous));
    }

    #[test]
    fn admission_rejects_low_confidence() {
        let mut c = cache(4);
        let out = c.insert(
            fv(&[0.0, 0.0]),
            1,
            0.1,
            EntrySource::LocalInference,
            SimTime::ZERO,
        );
        assert_eq!(out, InsertOutcome::Rejected);
        assert_eq!(out.entry(), None);
        assert!(c.is_empty());
        // Peer results need 0.5.
        let out = c.insert(fv(&[0.0, 0.0]), 1, 0.4, EntrySource::Peer, SimTime::ZERO);
        assert_eq!(out, InsertOutcome::Rejected);
        let out = c.insert(fv(&[0.0, 0.0]), 1, 0.6, EntrySource::Peer, SimTime::ZERO);
        assert!(matches!(out, InsertOutcome::Inserted(_)));
        assert_eq!(c.stats().rejected, 2);
    }

    #[test]
    fn near_duplicate_same_label_refreshes() {
        let mut c = cache(4);
        let id = insert_at(&mut c, 0.0, 7, 0).entry().unwrap();
        let out = c.insert(
            fv(&[0.05, 0.0]),
            7,
            0.95,
            EntrySource::LocalInference,
            SimTime::from_millis(100),
        );
        assert_eq!(out, InsertOutcome::Refreshed(id));
        assert_eq!(c.len(), 1);
        let entry = c.entry(id).unwrap();
        assert_eq!(entry.uses, 1);
        assert_eq!(entry.confidence, 0.95);
        assert_eq!(c.stats().refreshes, 1);
    }

    #[test]
    fn near_duplicate_different_label_inserts() {
        let mut c = cache(4);
        insert_at(&mut c, 0.0, 7, 0);
        let out = c.insert(
            fv(&[0.05, 0.0]),
            8,
            0.9,
            EntrySource::LocalInference,
            SimTime::from_millis(100),
        );
        assert!(matches!(out, InsertOutcome::Inserted(_)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let mut c = cache(2);
        let id0 = insert_at(&mut c, 0.0, 0, 0).entry().unwrap();
        let _id1 = insert_at(&mut c, 10.0, 1, 10).entry().unwrap();
        // Touch entry 0 so entry 1 becomes the LRU victim.
        c.lookup(&fv(&[0.1, 0.0]), SimTime::from_millis(100));
        let id2 = insert_at(&mut c, 20.0, 2, 200).entry().unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.entry(id0).is_some(), "recently used entry survives");
        assert!(c.entry(id2).is_some());
        assert_eq!(c.stats().evictions, 1);
        // The evicted key no longer hits.
        let result = c.lookup(&fv(&[10.0, 0.0]), SimTime::from_millis(300));
        assert!(!result.is_hit());
    }

    #[test]
    fn remove_and_clear() {
        let mut c = cache(4);
        let id = insert_at(&mut c, 0.0, 7, 0).entry().unwrap();
        assert!(c.remove(id));
        assert!(!c.remove(id));
        assert_eq!(c.stats().removals, 1);
        insert_at(&mut c, 1.0, 8, 10);
        c.clear();
        assert!(c.is_empty());
        // Index cleared too: lookup is an empty miss... (index exists but
        // holds nothing, so the nearest list is empty).
        let result = c.lookup(&fv(&[1.0, 0.0]), SimTime::from_millis(20));
        assert!(!result.is_hit());
    }

    #[test]
    fn entry_ids_are_never_recycled() {
        let mut c = cache(2);
        let mut seen = std::collections::HashSet::new();
        for i in 0..20 {
            // Far-apart keys so nothing dedups.
            let out = insert_at(&mut c, i as f32 * 10.0, i, i as u64);
            let id = out.entry().unwrap();
            assert!(seen.insert(id), "id {id} recycled");
        }
    }

    #[test]
    fn hottest_orders_by_recency() {
        let mut c = cache(8);
        insert_at(&mut c, 0.0, 0, 0);
        insert_at(&mut c, 10.0, 1, 10);
        insert_at(&mut c, 20.0, 2, 20);
        c.lookup(&fv(&[0.0, 0.0]), SimTime::from_millis(500));
        let hottest = c.hottest(2);
        assert_eq!(hottest.len(), 2);
        assert_eq!(hottest[0].label, 0, "just-touched entry first");
        assert_eq!(hottest[1].label, 2);
    }

    #[test]
    fn works_with_lsh_and_kdtree_backends() {
        for kind in [
            IndexConfig::Lsh(ann::LshConfig::default()),
            IndexConfig::KdTree,
            IndexConfig::Nsw(ann::NswConfig::default()),
        ] {
            let mut c: ApproxCache<u32> = ApproxCache::new(CacheConfig::new(16).with_index(kind));
            c.insert(
                fv(&[1.0, 2.0]),
                9,
                0.9,
                EntrySource::LocalInference,
                SimTime::ZERO,
            );
            let hit = c.lookup(&fv(&[1.0, 2.0]), SimTime::from_millis(5));
            assert!(hit.is_hit(), "{} backend", kind.name());
            assert_eq!(hit.label(), Some(&9));
        }
    }

    #[test]
    fn migration_swaps_index_at_threshold() {
        let mut c: ApproxCache<u32> = ApproxCache::new(
            CacheConfig::new(32)
                .with_admission(AdmissionPolicy {
                    dedup_distance: 0.0,
                    ..AdmissionPolicy::default()
                })
                .with_migration(IndexMigration {
                    at_len: 8,
                    target: IndexConfig::Nsw(ann::NswConfig::default()),
                }),
        );
        assert_eq!(c.index_kind(), "linear");
        for i in 0..8u32 {
            insert_at(&mut c, i as f32 * 10.0, i, i as u64);
            let expected = if i < 7 { "linear" } else { "nsw" };
            assert_eq!(c.index_kind(), expected, "after insert {i}");
        }
        // The rebuilt index still finds every migrated entry.
        for i in 0..8u32 {
            let hit = c.lookup(&fv(&[i as f32 * 10.0, 0.0]), SimTime::from_millis(100));
            assert_eq!(hit.label(), Some(&i), "entry {i} lost in the handoff");
        }
    }

    #[test]
    fn pre_migration_cache_is_op_for_op_identical_to_unmigrated() {
        // Oracle equivalence at the handoff boundary: run the same
        // operation stream through a migrating cache and a plain one.
        // Strictly before the threshold every outcome — insert results,
        // lookup results, distances bit-for-bit — must be identical;
        // migration may only change *future* lookup latency.
        let base = CacheConfig::new(64).with_aknn(AknnConfig {
            k: 3,
            distance_threshold: 1.0,
            homogeneity: 0.6,
            min_support: 1,
        });
        let threshold = 12usize;
        let mut plain: ApproxCache<u32> = ApproxCache::new(base.clone());
        let mut migrating: ApproxCache<u32> =
            ApproxCache::new(base.with_migration(IndexMigration {
                at_len: threshold,
                target: IndexConfig::Nsw(ann::NswConfig::default()),
            }));
        for i in 0..24u32 {
            let now = SimTime::from_millis(i as u64);
            let key = fv(&[i as f32 * 5.0, (i % 3) as f32]);
            let a = plain.insert(key.clone(), i, 0.9, EntrySource::LocalInference, now);
            let b = migrating.insert(key.clone(), i, 0.9, EntrySource::LocalInference, now);
            assert_eq!(a, b, "insert {i} diverged");
            let la = plain.lookup(&key, now);
            let lb = migrating.lookup(&key, now);
            if plain.len() < threshold {
                assert_eq!(migrating.index_kind(), "linear");
                assert_eq!(la, lb, "pre-migration lookup {i} diverged");
            } else {
                assert_eq!(migrating.index_kind(), "nsw");
                // Post-handoff both must still answer the exact key.
                assert_eq!(la.label(), lb.label(), "post-migration lookup {i}");
            }
        }
        assert_eq!(plain.len(), migrating.len());
        assert_eq!(plain.index_kind(), "linear");
    }

    #[test]
    fn migration_is_one_way_even_when_entries_drain() {
        let mut c: ApproxCache<u32> = ApproxCache::new(
            CacheConfig::new(32)
                .with_admission(AdmissionPolicy {
                    dedup_distance: 0.0,
                    ..AdmissionPolicy::default()
                })
                .with_migration(IndexMigration {
                    at_len: 4,
                    target: IndexConfig::Nsw(ann::NswConfig::default()),
                }),
        );
        let mut ids = Vec::new();
        for i in 0..4u32 {
            ids.push(
                insert_at(&mut c, i as f32 * 10.0, i, i as u64)
                    .entry()
                    .unwrap(),
            );
        }
        assert_eq!(c.index_kind(), "nsw");
        for id in ids {
            assert!(c.remove(id));
        }
        // Shrinking below the threshold does not migrate back.
        insert_at(&mut c, 99.0, 9, 99);
        assert_eq!(c.index_kind(), "nsw");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        CacheConfig::new(0);
    }

    #[test]
    fn id_namespace_strides_and_defaults_to_dense() {
        let mut c = cache(8);
        c.set_id_namespace(2, 4);
        let a = insert_at(&mut c, 0.0, 0, 0).entry().unwrap();
        let b = insert_at(&mut c, 10.0, 1, 10).entry().unwrap();
        assert_eq!((a, b), (EntryId(2), EntryId(6)));
        // The default namespace reproduces the dense sequence.
        let mut d = cache(8);
        let a = insert_at(&mut d, 0.0, 0, 0).entry().unwrap();
        let b = insert_at(&mut d, 10.0, 1, 10).entry().unwrap();
        assert_eq!((a, b), (EntryId(0), EntryId(1)));
    }

    #[test]
    #[should_panic(expected = "before the first insert")]
    fn id_namespace_rejected_after_first_insert() {
        let mut c = cache(8);
        insert_at(&mut c, 0.0, 0, 0);
        c.set_id_namespace(0, 4);
    }

    #[test]
    fn weighter_overrides_policy_and_counts_weight_evictions() {
        use crate::weight::RecomputeCostWeighter;
        let mut c = cache(2);
        // Keys share one dim, so weight differences come from latency:
        // give everything the same weighter — eviction falls to the
        // (weight, last_used, id) order, i.e. LRU among equal weights.
        c.set_weighter(Some(Arc::new(RecomputeCostWeighter::new(
            simcore::SimDuration::from_millis(100),
        ))));
        let id0 = insert_at(&mut c, 0.0, 0, 0).entry().unwrap();
        let id1 = insert_at(&mut c, 10.0, 1, 10).entry().unwrap();
        // Touch id0 so id1 is the stalest among equal weights.
        c.lookup(&fv(&[0.1, 0.0]), SimTime::from_millis(100));
        insert_at(&mut c, 20.0, 2, 200).entry().unwrap();
        assert!(c.entry(id0).is_some());
        assert!(c.entry(id1).is_none(), "stale equal-weight entry evicted");
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().weight_evictions, 1);
        // Switching the weighter off restores policy-driven eviction.
        c.set_weighter(None);
        insert_at(&mut c, 30.0, 3, 300);
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.stats().weight_evictions, 1);
    }

    #[test]
    fn frequency_gate_protects_victim_from_cold_candidate() {
        let mut c = cache(1);
        let id0 = insert_at(&mut c, 0.0, 0, 0).entry().unwrap();
        // Victim estimates high, candidate low: the insert is refused.
        let estimate = |_: &FeatureVector| 5u64;
        let out = c.insert_gated(
            fv(&[10.0, 0.0]),
            1,
            0.9,
            EntrySource::LocalInference,
            SimTime::from_millis(10),
            Some(FrequencyGate {
                candidate: 3,
                estimate: &estimate,
            }),
        );
        assert_eq!(out, InsertOutcome::Rejected);
        assert!(c.entry(id0).is_some(), "victim survives");
        assert_eq!(c.stats().sketch_rejected, 1);
        assert_eq!(c.stats().evictions, 0);
        // A strictly hotter candidate displaces the victim.
        let out = c.insert_gated(
            fv(&[10.0, 0.0]),
            1,
            0.9,
            EntrySource::LocalInference,
            SimTime::from_millis(20),
            Some(FrequencyGate {
                candidate: 6,
                estimate: &estimate,
            }),
        );
        assert!(matches!(out, InsertOutcome::Inserted(_)));
        assert!(c.entry(id0).is_none());
        assert_eq!(c.stats().evictions, 1);
        // Below capacity the gate is never consulted.
        let mut c = cache(4);
        let panicky = |_: &FeatureVector| -> u64 { unreachable!("gate consulted below capacity") };
        let out = c.insert_gated(
            fv(&[0.0, 0.0]),
            0,
            0.9,
            EntrySource::LocalInference,
            SimTime::ZERO,
            Some(FrequencyGate {
                candidate: 0,
                estimate: &panicky,
            }),
        );
        assert!(matches!(out, InsertOutcome::Inserted(_)));
    }

    #[test]
    fn peek_victim_matches_eviction_choice() {
        let mut c = cache(3);
        insert_at(&mut c, 0.0, 0, 0);
        let id1 = insert_at(&mut c, 10.0, 1, 10).entry().unwrap();
        c.lookup(&fv(&[0.0, 0.0]), SimTime::from_millis(50));
        // id1 is now the LRU entry.
        assert_eq!(c.peek_victim(SimTime::from_millis(60)), Some(id1));
        assert_eq!(
            ApproxCache::<u32>::new(CacheConfig::new(4)).peek_victim(SimTime::ZERO),
            None
        );
    }

    #[test]
    fn debug_is_nonempty() {
        let c = cache(4);
        let s = format!("{c:?}");
        assert!(s.contains("ApproxCache"));
        assert!(s.contains("capacity"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert { x: f32, label: u32, confidence: f64 },
        Lookup { x: f32 },
        Remove { nth: usize },
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (-50.0f32..50.0, 0u32..5, 0.0f64..1.0).prop_map(|(x, label, confidence)| Op::Insert {
                x,
                label,
                confidence
            }),
            (-50.0f32..50.0).prop_map(|x| Op::Lookup { x }),
            (0usize..64).prop_map(|nth| Op::Remove { nth }),
        ]
    }

    fn backend() -> impl Strategy<Value = IndexConfig> {
        prop_oneof![
            Just(IndexConfig::Linear),
            Just(IndexConfig::KdTree),
            Just(IndexConfig::Lsh(ann::LshConfig::default())),
            Just(IndexConfig::Nsw(ann::NswConfig::default())),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Under arbitrary operation sequences — against every index
        /// backend — the cache never exceeds capacity, its stats add up,
        /// and lookups never panic.
        #[test]
        fn cache_invariants(
            ops in proptest::collection::vec(op(), 1..120),
            index in backend(),
        ) {
            let mut c: ApproxCache<u32> = ApproxCache::new(
                CacheConfig::new(8)
                    .with_eviction(EvictionPolicy::Utility)
                    .with_index(index),
            );
            let mut now = SimTime::ZERO;
            for op in ops {
                now += simcore::SimDuration::from_millis(7);
                match op {
                    Op::Insert { x, label, confidence } => {
                        c.insert(
                            FeatureVector::from_vec(vec![x, 1.0]).unwrap(),
                            label,
                            confidence,
                            EntrySource::LocalInference,
                            now,
                        );
                    }
                    Op::Lookup { x } => {
                        let _ = c.lookup(&FeatureVector::from_vec(vec![x, 1.0]).unwrap(), now);
                    }
                    Op::Remove { nth } => {
                        let id = c.iter().map(|e| e.id).nth(nth % 8);
                        if let Some(id) = id {
                            c.remove(id);
                        }
                    }
                }
                prop_assert!(c.len() <= c.capacity());
            }
            let s = *c.stats();
            prop_assert_eq!(s.lookups, s.hits + s.misses());
            prop_assert!(s.inserts >= c.len() as u64);
        }
    }
}
