//! Incremental eviction metadata: O(log n) victim selection.
//!
//! [`EvictionPolicy::choose_victim`] re-scans every entry on each
//! insert-at-capacity — O(n) per insert, O(n²) to warm a cache up from
//! empty. This module keeps the policy's ordering key in a `BTreeSet`
//! maintained alongside the entry map, so the victim is the set's first
//! element: O(log n) per metadata update, O(log n) per eviction, and —
//! pinned by randomized tests — *identical* to the full scan's choice
//! for Lru, Lfu and Ttl.
//!
//! The Utility policy scores entries with a ratio of `now`-dependent
//! idle time, which no static ordering captures; it deliberately keeps
//! the full scan (see [`VictimChoice::ScanRequired`]).
//!
//! A cost-aware mode (built from a [`Weighter`](crate::weight::Weighter))
//! orders by `(weight, last_used, id)` instead of the configured policy:
//! the cheapest-to-recompute entry goes first, so an expensive model's
//! result outlives a cheap one's.

use std::collections::{BTreeSet, HashMap};

use simcore::{SimDuration, SimTime};

use crate::entry::{CacheEntry, EntryId};
use crate::evict::EvictionPolicy;

/// The ordering-relevant slice of a cache entry, captured before and
/// after each metadata mutation so stale set elements can be removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EntryMeta {
    pub id: u64,
    pub inserted_at: SimTime,
    pub last_used: SimTime,
    pub uses: u64,
}

impl EntryMeta {
    pub(crate) fn of<L>(entry: &CacheEntry<L>) -> EntryMeta {
        EntryMeta {
            id: entry.id.0,
            inserted_at: entry.inserted_at,
            last_used: entry.last_used,
            uses: entry.uses,
        }
    }
}

/// What [`VictimIndex::victim`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VictimChoice {
    /// The victim under the maintained ordering.
    Found(EntryId),
    /// No entries are tracked.
    Empty,
    /// The policy needs a full scan (Utility's score depends on `now`).
    ScanRequired,
}

/// Per-store (or per-shard) eviction metadata.
#[derive(Debug)]
pub(crate) enum VictimIndex {
    /// `(last_used, id)` minimum.
    Lru {
        by_recency: BTreeSet<(SimTime, u64)>,
    },
    /// `(uses, last_used, id)` minimum.
    Lfu {
        by_frequency: BTreeSet<(u64, SimTime, u64)>,
    },
    /// Expired-first via `(inserted_at, id)`, else the Lru fallback.
    Ttl {
        max_age: SimDuration,
        by_inserted: BTreeSet<(SimTime, u64)>,
        by_recency: BTreeSet<(SimTime, u64)>,
    },
    /// No structure maintained: `now`-dependent score, full scan.
    Utility,
    /// Cost-aware override: `(weight, last_used, id)` minimum, weights
    /// fixed at insert time by the store's `Weighter`.
    Weighted {
        by_weight: BTreeSet<(u64, SimTime, u64)>,
        /// `id -> weight`, consulted (never iterated) to locate the
        /// stale tuple on touch/remove.
        weights: HashMap<u64, u64>,
    },
}

impl VictimIndex {
    /// An empty index for `policy`; `weighted` overrides the policy with
    /// the cost-aware ordering.
    pub(crate) fn new(policy: EvictionPolicy, weighted: bool) -> VictimIndex {
        if weighted {
            return VictimIndex::Weighted {
                by_weight: BTreeSet::new(),
                weights: HashMap::new(),
            };
        }
        match policy {
            EvictionPolicy::Lru => VictimIndex::Lru {
                by_recency: BTreeSet::new(),
            },
            EvictionPolicy::Lfu => VictimIndex::Lfu {
                by_frequency: BTreeSet::new(),
            },
            EvictionPolicy::Ttl { max_age } => VictimIndex::Ttl {
                max_age,
                by_inserted: BTreeSet::new(),
                by_recency: BTreeSet::new(),
            },
            EvictionPolicy::Utility => VictimIndex::Utility,
        }
    }

    /// True when the cost-aware ordering is active.
    pub(crate) fn is_weighted(&self) -> bool {
        matches!(self, VictimIndex::Weighted { .. })
    }

    /// Registers a new entry. `weight` is required in weighted mode and
    /// ignored otherwise.
    pub(crate) fn on_insert(&mut self, meta: EntryMeta, weight: Option<u64>) {
        match self {
            VictimIndex::Lru { by_recency } => {
                by_recency.insert((meta.last_used, meta.id));
            }
            VictimIndex::Lfu { by_frequency } => {
                by_frequency.insert((meta.uses, meta.last_used, meta.id));
            }
            VictimIndex::Ttl {
                by_inserted,
                by_recency,
                ..
            } => {
                by_inserted.insert((meta.inserted_at, meta.id));
                by_recency.insert((meta.last_used, meta.id));
            }
            VictimIndex::Utility => {}
            VictimIndex::Weighted { by_weight, weights } => {
                let w = weight.unwrap_or(1);
                weights.insert(meta.id, w);
                by_weight.insert((w, meta.last_used, meta.id));
            }
        }
    }

    /// Re-keys an entry whose recency/frequency metadata changed.
    pub(crate) fn on_update(&mut self, before: EntryMeta, after: EntryMeta) {
        match self {
            VictimIndex::Lru { by_recency } => {
                by_recency.remove(&(before.last_used, before.id));
                by_recency.insert((after.last_used, after.id));
            }
            VictimIndex::Lfu { by_frequency } => {
                by_frequency.remove(&(before.uses, before.last_used, before.id));
                by_frequency.insert((after.uses, after.last_used, after.id));
            }
            VictimIndex::Ttl { by_recency, .. } => {
                // `inserted_at` never changes after insert.
                by_recency.remove(&(before.last_used, before.id));
                by_recency.insert((after.last_used, after.id));
            }
            VictimIndex::Utility => {}
            VictimIndex::Weighted { by_weight, weights } => {
                let w = weights.get(&before.id).copied().unwrap_or(1);
                by_weight.remove(&(w, before.last_used, before.id));
                by_weight.insert((w, after.last_used, after.id));
            }
        }
    }

    /// Drops a removed entry's metadata.
    pub(crate) fn on_remove(&mut self, meta: EntryMeta) {
        match self {
            VictimIndex::Lru { by_recency } => {
                by_recency.remove(&(meta.last_used, meta.id));
            }
            VictimIndex::Lfu { by_frequency } => {
                by_frequency.remove(&(meta.uses, meta.last_used, meta.id));
            }
            VictimIndex::Ttl {
                by_inserted,
                by_recency,
                ..
            } => {
                by_inserted.remove(&(meta.inserted_at, meta.id));
                by_recency.remove(&(meta.last_used, meta.id));
            }
            VictimIndex::Utility => {}
            VictimIndex::Weighted { by_weight, weights } => {
                if let Some(w) = weights.remove(&meta.id) {
                    by_weight.remove(&(w, meta.last_used, meta.id));
                }
            }
        }
    }

    /// Forgets everything.
    pub(crate) fn clear(&mut self) {
        match self {
            VictimIndex::Lru { by_recency } => by_recency.clear(),
            VictimIndex::Lfu { by_frequency } => by_frequency.clear(),
            VictimIndex::Ttl {
                by_inserted,
                by_recency,
                ..
            } => {
                by_inserted.clear();
                by_recency.clear();
            }
            VictimIndex::Utility => {}
            VictimIndex::Weighted { by_weight, weights } => {
                by_weight.clear();
                weights.clear();
            }
        }
    }

    /// The victim under the maintained ordering at `now` — O(log n),
    /// reading only the first set element.
    pub(crate) fn victim(&self, now: SimTime) -> VictimChoice {
        match self {
            VictimIndex::Lru { by_recency } => match by_recency.first() {
                Some(&(_, id)) => VictimChoice::Found(EntryId(id)),
                None => VictimChoice::Empty,
            },
            VictimIndex::Lfu { by_frequency } => match by_frequency.first() {
                Some(&(_, _, id)) => VictimChoice::Found(EntryId(id)),
                None => VictimChoice::Empty,
            },
            VictimIndex::Ttl {
                max_age,
                by_inserted,
                by_recency,
            } => {
                // The global `(inserted_at, id)` minimum is expired iff
                // *any* entry is expired (all others are younger), and
                // when expired it is exactly the full scan's oldest
                // expired entry.
                if let Some(&(inserted_at, id)) = by_inserted.first() {
                    if now.saturating_duration_since(inserted_at) > *max_age {
                        return VictimChoice::Found(EntryId(id));
                    }
                }
                match by_recency.first() {
                    Some(&(_, id)) => VictimChoice::Found(EntryId(id)),
                    None => VictimChoice::Empty,
                }
            }
            VictimIndex::Utility => VictimChoice::ScanRequired,
            VictimIndex::Weighted { by_weight, .. } => match by_weight.first() {
                Some(&(_, _, id)) => VictimChoice::Found(EntryId(id)),
                None => VictimChoice::Empty,
            },
        }
    }

    /// Number of tracked entries (0 for scan-only modes).
    #[cfg(test)]
    fn tracked(&self) -> usize {
        match self {
            VictimIndex::Lru { by_recency } => by_recency.len(),
            VictimIndex::Lfu { by_frequency } => by_frequency.len(),
            VictimIndex::Ttl { by_recency, .. } => by_recency.len(),
            VictimIndex::Utility => 0,
            VictimIndex::Weighted { by_weight, .. } => by_weight.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntrySource;
    use features::FeatureVector;
    use simcore::SimRng;

    fn entry(id: u64, inserted_ms: u64, used_ms: u64, uses: u64) -> CacheEntry<u32> {
        CacheEntry {
            id: EntryId(id),
            key: FeatureVector::zeros(1),
            label: 0,
            confidence: 0.9,
            inserted_at: SimTime::from_millis(inserted_ms),
            last_used: SimTime::from_millis(used_ms),
            uses,
            source: EntrySource::LocalInference,
        }
    }

    fn policies() -> [EvictionPolicy; 3] {
        [
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::Ttl {
                max_age: SimDuration::from_millis(400),
            },
        ]
    }

    /// The pinning test the O(log n) refactor hangs on: a randomized
    /// insert/touch/remove workload where after *every* step the index's
    /// victim equals the old full scan's victim, for Lru, Lfu and Ttl.
    #[test]
    fn victim_matches_full_scan_on_randomized_workloads() {
        for policy in policies() {
            let mut rng = SimRng::seed(0x5eed).split(policy.name());
            let mut index = VictimIndex::new(policy, false);
            let mut entries: Vec<CacheEntry<u32>> = Vec::new();
            let mut next_id = 0u64;
            for step in 0..600u64 {
                let now = SimTime::from_millis(step * 13);
                let action = rng.index(4);
                if entries.is_empty() || action == 0 {
                    // Insert, with deliberately colliding timestamps so
                    // the id tiebreaks get exercised.
                    let inserted = SimTime::from_millis((step / 3) * 20);
                    let e = CacheEntry {
                        inserted_at: inserted,
                        last_used: inserted,
                        ..entry(next_id, 0, 0, 0)
                    };
                    next_id += 1;
                    index.on_insert(EntryMeta::of(&e), None);
                    entries.push(e);
                } else if action == 1 {
                    // Touch a random entry (a cache hit).
                    let i = rng.index(entries.len());
                    let e = &mut entries[i];
                    let before = EntryMeta::of(e);
                    e.last_used = now;
                    e.uses += 1;
                    index.on_update(before, EntryMeta::of(e));
                } else if action == 2 && entries.len() > 1 {
                    // Remove a random entry.
                    let i = rng.index(entries.len());
                    let e = entries.swap_remove(i);
                    index.on_remove(EntryMeta::of(&e));
                }
                let fast = index.victim(now);
                let slow = policy.choose_victim(entries.iter(), now);
                match (fast, slow) {
                    (VictimChoice::Found(a), Some(b)) => {
                        assert_eq!(a, b, "policy {policy} step {step}: index != full scan")
                    }
                    (VictimChoice::Empty, None) => {}
                    other => panic!("policy {policy} step {step}: {other:?}"),
                }
                assert_eq!(index.tracked(), entries.len(), "policy {policy}");
            }
        }
    }

    #[test]
    fn utility_requires_a_scan() {
        let index = VictimIndex::new(EvictionPolicy::Utility, false);
        assert_eq!(index.victim(SimTime::ZERO), VictimChoice::ScanRequired);
        assert!(!index.is_weighted());
    }

    #[test]
    fn weighted_mode_evicts_cheapest_first_with_lru_tiebreak() {
        let mut index = VictimIndex::new(EvictionPolicy::Lru, true);
        assert!(index.is_weighted());
        let a = entry(1, 0, 500, 0);
        let b = entry(2, 0, 100, 0); // LRU entry, but heavy
        let c = entry(3, 0, 300, 0);
        index.on_insert(EntryMeta::of(&a), Some(10));
        index.on_insert(EntryMeta::of(&b), Some(90));
        index.on_insert(EntryMeta::of(&c), Some(10));
        // Lightest weight wins; among equal weights, the older use.
        assert_eq!(
            index.victim(SimTime::from_millis(1_000)),
            VictimChoice::Found(EntryId(3))
        );
        index.on_remove(EntryMeta::of(&c));
        assert_eq!(
            index.victim(SimTime::from_millis(1_000)),
            VictimChoice::Found(EntryId(1))
        );
        // Touching the light entry does not save it from a heavy rival.
        let before = EntryMeta::of(&a);
        let mut touched = a.clone();
        touched.last_used = SimTime::from_millis(2_000);
        touched.uses += 1;
        index.on_update(before, EntryMeta::of(&touched));
        assert_eq!(
            index.victim(SimTime::from_millis(2_000)),
            VictimChoice::Found(EntryId(1))
        );
        index.clear();
        assert_eq!(index.victim(SimTime::ZERO), VictimChoice::Empty);
    }

    #[test]
    fn ttl_front_expiry_check_is_exact() {
        let max_age = SimDuration::from_millis(100);
        let mut index = VictimIndex::new(EvictionPolicy::Ttl { max_age }, false);
        let fresh = entry(1, 950, 960, 0);
        let stale = entry(2, 0, 999, 9); // old insert, hot use
        index.on_insert(EntryMeta::of(&fresh), None);
        index.on_insert(EntryMeta::of(&stale), None);
        // Stale entry expired: expiry branch beats the recency order.
        assert_eq!(
            index.victim(SimTime::from_millis(1_000)),
            VictimChoice::Found(EntryId(2))
        );
        index.on_remove(EntryMeta::of(&stale));
        // Nothing expired: LRU fallback.
        assert_eq!(
            index.victim(SimTime::from_millis(1_000)),
            VictimChoice::Found(EntryId(1))
        );
    }
}
