//! The sharded store: per-shard locks, per-shard indexes, deterministic
//! routing and merging.

use std::cmp::Reverse;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use features::FeatureVector;
use simcore::{SimDuration, SimRng, SimTime};

use super::sketch::{mix, FrequencyConfig, TinyLfu};
use crate::entry::{CacheEntry, EntryId, EntrySource};
use crate::snapshot::CacheSnapshot;
use crate::stats::CacheStats;
use crate::store::{ApproxCache, CacheConfig, FrequencyGate, InsertOutcome, LookupResult};
use crate::weight::Weighter;

/// Protocol constant seeding the Rademacher routing projection. Fixed —
/// not derived from the sim seed — because two devices must route
/// identical keys identically or peer-shared entries would land in the
/// wrong shard.
const ROUTE_SEED: u64 = 0x1cdc_5202_1a6b_cafe;

/// The key's routing signature: project onto a fixed ±1 direction,
/// quantize the 1-D projection into cells of width `cell`, hash the cell
/// index. Near keys (within a cell) share a signature; the signature
/// picks both the home shard and the TinyLFU frequency key.
///
/// A full per-dimension grid hash would break locality — two keys a
/// hair's breadth apart almost surely differ in *some* dimension's cell
/// at 64 dimensions — while a 1-D projection only splits neighbours that
/// straddle one cell boundary.
pub fn route_signature(key: &FeatureVector, cell: f64) -> u64 {
    let mut dot = 0.0f64;
    for (i, &c) in key.as_slice().iter().enumerate() {
        if mix(ROUTE_SEED ^ i as u64) & 1 == 0 {
            dot += c as f64;
        } else {
            dot -= c as f64;
        }
    }
    let bucket = (dot / cell).floor() as i64;
    mix(bucket as u64)
}

/// Configuration of a [`ShardedCache`]: the per-store cache config plus
/// the concurrency and admission knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcurrentConfig {
    /// The logical cache configuration (total capacity, hit test,
    /// eviction, admission, index kind — each shard gets its own index).
    pub cache: CacheConfig,
    /// Number of shards. 1 (the default) reproduces the single-threaded
    /// store exactly.
    pub shards: usize,
    /// TinyLFU frequency admission; `None` (the default) admits at the
    /// eviction point unconditionally, like the plain store.
    pub frequency: Option<FrequencyConfig>,
    /// Seed for the frequency sketches, derived from the sim seed split
    /// by the caller (per-shard seeds split off it by shard index).
    pub sketch_seed: u64,
    /// Routing projection cell width. Wider cells put more of the key
    /// space in one shard (fewer boundary misses, less spread).
    pub bucket_cell: f64,
}

impl ConcurrentConfig {
    /// Single-shard, no-frequency defaults around `cache` — the
    /// configuration that is operation-for-operation identical to
    /// `ApproxCache::new(cache)`.
    pub fn new(cache: CacheConfig) -> ConcurrentConfig {
        ConcurrentConfig {
            cache,
            shards: 1,
            frequency: None,
            sketch_seed: 0,
            bucket_cell: 4.0,
        }
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> ConcurrentConfig {
        self.shards = shards;
        self.validate();
        self
    }

    /// Enables TinyLFU frequency admission.
    pub fn with_frequency(mut self, frequency: FrequencyConfig) -> ConcurrentConfig {
        self.frequency = Some(frequency);
        self.validate();
        self
    }

    /// Sets the sketch seed (derive it from the sim seed split).
    pub fn with_sketch_seed(mut self, seed: u64) -> ConcurrentConfig {
        self.sketch_seed = seed;
        self
    }

    /// Sets the routing cell width.
    pub fn with_bucket_cell(mut self, cell: f64) -> ConcurrentConfig {
        self.bucket_cell = cell;
        self.validate();
        self
    }

    /// Validates all knobs.
    ///
    /// # Panics
    ///
    /// Panics if the shard count is zero, the cell width is not positive
    /// and finite, or a nested config is invalid.
    pub fn validate(&self) {
        self.cache.validate();
        assert!(self.shards > 0, "ConcurrentConfig: shards must be positive");
        assert!(
            self.bucket_cell > 0.0 && self.bucket_cell.is_finite(),
            "ConcurrentConfig: bucket_cell must be positive and finite, got {}",
            self.bucket_cell
        );
        if let Some(frequency) = &self.frequency {
            frequency.validate();
        }
    }
}

/// One shard: a plain store plus its admission filter, together behind
/// one lock.
#[derive(Debug)]
struct Shard<L> {
    cache: ApproxCache<L>,
    lfu: Option<TinyLfu>,
}

/// A concurrent approximate cache: `S` independently locked shards, keys
/// routed by [`route_signature`]. All cross-shard reads (stats, length,
/// snapshots) visit shards in ascending index order, so merged results
/// are deterministic. See the [module docs](super) for the full
/// contract.
pub struct ShardedCache<L> {
    config: ConcurrentConfig,
    shards: Vec<Mutex<Shard<L>>>,
    /// Bumped whenever cached *contents* (entries or the hit threshold)
    /// may have changed — inserts, clears, non-empty expiry sweeps,
    /// threshold updates. Read-side operations never bump it, so callers
    /// holding a derived view (e.g. a fleet round's frozen peer view)
    /// can cheaply detect staleness.
    version: AtomicU64,
}

impl<L> fmt::Debug for ShardedCache<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.config.cache.capacity)
            .field("frequency", &self.config.frequency.is_some())
            .finish()
    }
}

impl<L: Copy + Eq + Hash + fmt::Debug> ShardedCache<L> {
    /// Builds the sharded store. Total capacity splits evenly across
    /// shards (rounded up, so `S > 1` can hold slightly more than the
    /// configured total); shard `i` mints entry ids `i, i+S, i+2S, …` so
    /// ids stay globally unique — and `id % S` names an entry's shard.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(config: ConcurrentConfig) -> ShardedCache<L> {
        config.validate();
        let shard_count = config.shards;
        let per_shard = config.cache.capacity.div_ceil(shard_count);
        let sketch_root = SimRng::seed(config.sketch_seed);
        let shards = (0..shard_count)
            .map(|i| {
                let mut shard_config = config.cache.clone();
                shard_config.capacity = per_shard;
                let mut cache = ApproxCache::new(shard_config);
                cache.set_id_namespace(i as u64, shard_count as u64);
                let lfu = config.frequency.map(|f| {
                    TinyLfu::new(
                        f,
                        sketch_root
                            .split_index("shard-sketch", i as u64)
                            .seed_value(),
                    )
                });
                Mutex::new(Shard { cache, lfu })
            })
            .collect();
        ShardedCache {
            config,
            shards,
            version: AtomicU64::new(0),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ConcurrentConfig {
        &self.config
    }

    /// A counter that advances whenever cached contents may have
    /// changed (insert, clear, non-empty expiry sweep, threshold
    /// update). Two equal readings bracket a window in which every
    /// lookup against this cache would have seen the same entries.
    pub fn contents_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, idx: usize) -> &Mutex<Shard<L>> {
        // xtask-allow(panics): idx is always `sig % shards.len()` or an
        // id residue, in range by construction.
        &self.shards[idx]
    }

    /// The key's home shard index and routing signature.
    fn home_of(&self, key: &FeatureVector) -> (usize, u64) {
        let sig = route_signature(key, self.config.bucket_cell);
        ((sig % self.shards.len() as u64) as usize, sig)
    }

    /// Looks up `key` in its home shard only — the point of sharding:
    /// the probed index holds ~`n/S` entries. A neighbourhood straddling
    /// a routing-cell boundary can miss entries cached in the adjacent
    /// shard; that locality loss is the documented price of per-shard
    /// indexes (zero at `S = 1`).
    pub fn lookup(&self, key: &FeatureVector, now: SimTime) -> LookupResult<L> {
        let (idx, sig) = self.home_of(key);
        let mut shard = self.shard(idx).lock();
        if let Some(lfu) = &mut shard.lfu {
            lfu.note(sig);
        }
        shard.cache.lookup(key, now)
    }

    /// Inserts a result into the key's home shard. With frequency
    /// admission enabled, the pending access ring is flushed into the
    /// sketch first and the eviction point applies the TinyLFU gate.
    pub fn insert(
        &self,
        key: FeatureVector,
        label: L,
        confidence: f64,
        source: EntrySource,
        now: SimTime,
    ) -> InsertOutcome {
        let (idx, sig) = self.home_of(&key);
        let outcome = {
            let mut guard = self.shard(idx).lock();
            let Shard { cache, lfu } = &mut *guard;
            match lfu {
                Some(lfu) => {
                    lfu.note(sig);
                    lfu.flush();
                    let lfu = &*lfu;
                    let cell = self.config.bucket_cell;
                    let estimate = move |k: &FeatureVector| lfu.estimate(route_signature(k, cell));
                    let gate = FrequencyGate {
                        candidate: lfu.estimate(sig),
                        estimate: &estimate,
                    };
                    cache.insert_gated(key, label, confidence, source, now, Some(gate))
                }
                None => cache.insert(key, label, confidence, source, now),
            }
        };
        if outcome.entry().is_some() {
            self.bump_version();
        }
        outcome
    }

    /// Merged operation counters, accumulated in ascending shard order.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let guard = shard.lock();
            total.merge(guard.cache.stats());
        }
        total
    }

    /// Total number of cached entries.
    pub fn len(&self) -> usize {
        let mut total = 0;
        for shard in &self.shards {
            let guard = shard.lock();
            total += guard.cache.len();
        }
        total
    }

    /// True if nothing is cached anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every entry from every shard (statistics retained).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock();
            guard.cache.clear();
        }
        self.bump_version();
    }

    /// Sweeps every shard for entries older than `max_age`, returning
    /// the total dropped.
    pub fn expire_older_than(&self, now: SimTime, max_age: SimDuration) -> usize {
        let mut total = 0;
        for shard in &self.shards {
            let mut guard = shard.lock();
            total += guard.cache.expire_older_than(now, max_age);
        }
        if total > 0 {
            self.bump_version();
        }
        total
    }

    /// The current A-kNN distance threshold (uniform across shards; read
    /// from shard 0).
    pub fn distance_threshold(&self) -> f64 {
        let guard = self.shard(0).lock();
        guard.cache.distance_threshold()
    }

    /// Sets the A-kNN distance threshold on every shard.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive and finite.
    pub fn set_distance_threshold(&self, threshold: f64) {
        for shard in &self.shards {
            let mut guard = shard.lock();
            guard.cache.set_distance_threshold(threshold);
        }
        self.bump_version();
    }

    /// Switches cost-aware eviction on or off on every shard.
    pub fn set_weighter(&self, weighter: Option<Arc<dyn Weighter<L>>>) {
        for shard in &self.shards {
            let mut guard = shard.lock();
            guard.cache.set_weighter(weighter.clone());
        }
    }

    /// The nearest cached entry to `key` across *all* shards (read-only
    /// probe: no statistics, no recency update). Ties break to the
    /// lowest shard index.
    pub fn peek_nearest(&self, key: &FeatureVector) -> Option<(f64, L)> {
        let mut best: Option<(f64, L)> = None;
        for shard in &self.shards {
            let guard = shard.lock();
            if let Some((distance, label)) = guard.cache.peek_nearest(key) {
                if best.is_none_or(|(b, _)| distance < b) {
                    best = Some((distance, label));
                }
            }
        }
        best
    }

    /// The confidence of the entry with `id`, if still cached. The id's
    /// residue names its shard, so only one shard is locked.
    pub fn entry_confidence(&self, id: EntryId) -> Option<f64> {
        let idx = (id.0 % self.shards.len() as u64) as usize;
        let guard = self.shard(idx).lock();
        guard.cache.entry(id).map(|e| e.confidence)
    }

    /// The `limit` most recently used entries across all shards, newest
    /// first (cloned: the per-shard locks are released before returning).
    pub fn hottest(&self, limit: usize) -> Vec<CacheEntry<L>> {
        let mut all: Vec<CacheEntry<L>> = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock();
            all.extend(guard.cache.hottest(limit).into_iter().cloned());
        }
        all.sort_by_key(|e| Reverse((e.last_used, e.uses, e.id)));
        all.truncate(limit);
        all
    }

    /// A snapshot of every shard's entries, sorted by entry id — a
    /// deterministic merged view for persistence.
    pub fn snapshot(&self, now: SimTime) -> CacheSnapshot<L> {
        let mut entries: Vec<CacheEntry<L>> = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock();
            entries.extend(guard.cache.iter().cloned());
        }
        entries.sort_by_key(|e| e.id);
        CacheSnapshot {
            taken_at: now,
            entries,
        }
    }

    /// [`snapshot`](Self::snapshot) normalized for cross-run comparison:
    /// entry ids are zeroed (they encode per-shard arrival order, which
    /// legitimately varies across thread interleavings) and entries sort
    /// by key bits. Two runs that cached the same *contents* produce
    /// byte-identical canonical snapshots regardless of worker count.
    pub fn canonical_snapshot(&self, now: SimTime) -> CacheSnapshot<L> {
        let mut snap = self.snapshot(now);
        for e in &mut snap.entries {
            e.id = EntryId(0);
        }
        snap.entries.sort_by_key(|e| {
            (
                e.key
                    .as_slice()
                    .iter()
                    .map(|c| c.to_bits())
                    .collect::<Vec<u32>>(),
                e.inserted_at,
                e.last_used,
                e.uses,
            )
        });
        snap
    }

    /// Restores a snapshot through the normal insert path (routing,
    /// admission, eviction all apply), hottest entries first. Returns
    /// how many entries were inserted or absorbed as refreshes.
    pub fn restore(&self, snapshot: &CacheSnapshot<L>, now: SimTime) -> usize {
        let mut ordered: Vec<&CacheEntry<L>> = snapshot.entries.iter().collect();
        ordered.sort_by_key(|e| Reverse((e.last_used, e.uses, e.id)));
        let mut restored = 0;
        for entry in ordered.into_iter().take(self.config.cache.capacity) {
            let outcome = self.insert(
                entry.key.clone(),
                entry.label,
                entry.confidence,
                entry.source,
                now,
            );
            if outcome.entry().is_some() {
                restored += 1;
            }
        }
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use ann::AknnConfig;

    fn fv(x: f32, y: f32) -> FeatureVector {
        FeatureVector::from_vec(vec![x, y]).unwrap()
    }

    fn base_config(capacity: usize) -> CacheConfig {
        CacheConfig::new(capacity)
            .with_aknn(AknnConfig {
                k: 3,
                distance_threshold: 1.0,
                homogeneity: 0.6,
                min_support: 1,
            })
            .with_admission(AdmissionPolicy::admit_all())
    }

    #[test]
    fn routing_is_deterministic_and_locality_preserving() {
        let key = fv(3.2, -1.5);
        assert_eq!(route_signature(&key, 4.0), route_signature(&key, 4.0));
        // The same point in a different cell width may differ, but within
        // one call the signature is a pure function of (key, cell).
        let near = fv(3.2001, -1.5001);
        assert_eq!(
            route_signature(&key, 4.0),
            route_signature(&near, 4.0),
            "keys a hair apart share a routing cell (away from boundaries)"
        );
        let far = fv(300.0, -150.0);
        assert_ne!(route_signature(&key, 4.0), route_signature(&far, 4.0));
    }

    #[test]
    fn far_keys_spread_across_shards() {
        let cache: ShardedCache<u32> =
            ShardedCache::new(ConcurrentConfig::new(base_config(256)).with_shards(4));
        for i in 0..64 {
            cache.insert(
                fv(i as f32 * 25.0, -(i as f32) * 13.0),
                i,
                0.9,
                EntrySource::LocalInference,
                SimTime::from_millis(i as u64),
            );
        }
        // Ids encode their shard as `id % 4`; a healthy routing function
        // puts 64 well-spread keys in more than one shard.
        let snap = cache.snapshot(SimTime::from_secs(1));
        let shards_used: std::collections::BTreeSet<u64> =
            snap.entries.iter().map(|e| e.id.0 % 4).collect();
        assert!(shards_used.len() > 1, "all keys routed to one shard");
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.stats().inserts, 64);
    }

    #[test]
    fn single_shard_mints_dense_ids() {
        let cache: ShardedCache<u32> = ShardedCache::new(ConcurrentConfig::new(base_config(16)));
        let mut ids = Vec::new();
        for i in 0..4 {
            let out = cache.insert(
                fv(i as f32 * 50.0, 0.0),
                i,
                0.9,
                EntrySource::LocalInference,
                SimTime::from_millis(i as u64),
            );
            ids.push(out.entry().unwrap().0);
        }
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(cache.shard_count(), 1);
    }

    #[test]
    fn lookup_hits_in_home_shard() {
        let cache: ShardedCache<u32> =
            ShardedCache::new(ConcurrentConfig::new(base_config(64)).with_shards(4));
        let key = fv(1.0, 2.0);
        cache.insert(
            key.clone(),
            9,
            0.9,
            EntrySource::LocalInference,
            SimTime::ZERO,
        );
        let hit = cache.lookup(&fv(1.05, 2.0), SimTime::from_millis(5));
        assert!(hit.is_hit());
        assert_eq!(hit.label(), Some(&9));
        let stats = cache.stats();
        assert_eq!(stats.lookups, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn frequency_admission_protects_hot_working_set() {
        // Capacity-1 shardless cache with TinyLFU: a hot key's entry
        // survives a burst of cold keys because each cold candidate's
        // frequency estimate loses to the victim's.
        let cache: ShardedCache<u32> = ShardedCache::new(
            ConcurrentConfig::new(base_config(1))
                .with_frequency(FrequencyConfig::default())
                .with_sketch_seed(7),
        );
        let hot = fv(0.0, 0.0);
        cache.insert(
            hot.clone(),
            1,
            0.9,
            EntrySource::LocalInference,
            SimTime::ZERO,
        );
        for i in 0..10 {
            let _ = cache.lookup(&hot, SimTime::from_millis(i));
        }
        for i in 0..5u32 {
            let cold = fv(100.0 + i as f32 * 40.0, 0.0);
            let out = cache.insert(
                cold,
                10 + i,
                0.9,
                EntrySource::LocalInference,
                SimTime::from_millis(100 + i as u64),
            );
            assert_eq!(out, InsertOutcome::Rejected, "cold burst key {i}");
        }
        let stats = cache.stats();
        assert_eq!(stats.sketch_rejected, 5);
        assert_eq!(stats.evictions, 0);
        assert!(
            cache.lookup(&hot, SimTime::from_secs(1)).is_hit(),
            "hot entry survived the burst"
        );
    }

    #[test]
    fn snapshot_restore_round_trip_across_shard_counts() {
        let source: ShardedCache<u32> =
            ShardedCache::new(ConcurrentConfig::new(base_config(64)).with_shards(4));
        for i in 0..12 {
            source.insert(
                fv(i as f32 * 30.0, 5.0),
                i,
                0.9,
                EntrySource::LocalInference,
                SimTime::from_millis(i as u64),
            );
        }
        let snap = source.snapshot(SimTime::from_secs(1));
        assert_eq!(snap.len(), 12);
        // Snapshot is sorted by id (deterministic merged view).
        let ids: Vec<u64> = snap.entries.iter().map(|e| e.id.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);

        let dest: ShardedCache<u32> = ShardedCache::new(ConcurrentConfig::new(base_config(64)));
        let restored = dest.restore(&snap, SimTime::from_secs(2));
        assert_eq!(restored, 12);
        for i in 0..12u32 {
            let hit = dest.lookup(&fv(i as f32 * 30.0, 5.0), SimTime::from_secs(3));
            assert_eq!(hit.label(), Some(&i), "key {i}");
        }
    }

    #[test]
    fn canonical_snapshot_is_interleaving_independent() {
        // Same contents inserted in different orders (ids differ) yield
        // identical canonical snapshots.
        let make = |order: &[u32]| {
            let cache: ShardedCache<u32> =
                ShardedCache::new(ConcurrentConfig::new(base_config(64)).with_shards(4));
            for &i in order {
                cache.insert(
                    fv(i as f32 * 30.0, 5.0),
                    i,
                    0.9,
                    EntrySource::LocalInference,
                    SimTime::from_millis(100),
                );
            }
            cache.canonical_snapshot(SimTime::from_secs(1))
        };
        let forward = make(&[0, 1, 2, 3, 4, 5]);
        let reverse = make(&[5, 4, 3, 2, 1, 0]);
        assert_eq!(forward, reverse);
    }

    #[test]
    fn threshold_and_weighter_apply_to_every_shard() {
        let cache: ShardedCache<u32> =
            ShardedCache::new(ConcurrentConfig::new(base_config(64)).with_shards(4));
        cache.set_distance_threshold(2.5);
        assert!((cache.distance_threshold() - 2.5).abs() < 1e-12);
        cache.set_weighter(Some(Arc::new(crate::weight::RecomputeCostWeighter::new(
            SimDuration::from_millis(100),
        ))));
        cache.set_weighter(None);
        assert!(cache.is_empty());
        let debug = format!("{cache:?}");
        assert!(debug.contains("ShardedCache"));
    }

    #[test]
    fn expire_and_clear_cover_all_shards() {
        let cache: ShardedCache<u32> =
            ShardedCache::new(ConcurrentConfig::new(base_config(64)).with_shards(4));
        for i in 0..8 {
            cache.insert(
                fv(i as f32 * 30.0, 5.0),
                i,
                0.9,
                EntrySource::LocalInference,
                SimTime::from_millis(i as u64),
            );
        }
        let dropped =
            cache.expire_older_than(SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(dropped, 5, "entries inserted at 0..=4 ms expired");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().expirations, 5);
    }

    #[test]
    #[should_panic(expected = "shards must be positive")]
    fn zero_shards_rejected() {
        ConcurrentConfig::new(base_config(4)).with_shards(0);
    }
}
