//! TinyLFU frequency estimation: count-min sketch + bloom doorkeeper.
//!
//! The admission question is "is the candidate accessed more often than
//! the entry it would evict?". Answering it exactly would need a counter
//! per signature ever seen; TinyLFU answers it approximately in O(1)
//! space: a count-min sketch of 8-bit counters estimates frequencies
//! (over-counting only, never under), a bloom-filter *doorkeeper*
//! absorbs the long tail of once-seen signatures so they never pollute
//! the sketch, and a periodic *reset* halves every counter so the
//! estimate tracks the recent window rather than all history.
//!
//! Determinism: row seeds derive from the sim seed via
//! `SimRng::split_index` and all hashing is the splitmix64 finisher —
//! no ambient randomness, no hash-order dependence.

use serde::{Deserialize, Serialize};

use simcore::SimRng;

use super::ring::AccessRing;

/// Tuning for the TinyLFU admission filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencyConfig {
    /// Pending-access ring capacity (events buffered between inserts).
    pub ring_capacity: usize,
    /// Count-min sketch width per row; must be a power of two.
    pub sketch_width: usize,
    /// Count-min sketch depth (independent rows).
    pub sketch_depth: usize,
    /// Recorded accesses between counter-halving resets.
    pub sample_window: u64,
}

impl Default for FrequencyConfig {
    fn default() -> FrequencyConfig {
        FrequencyConfig {
            ring_capacity: 256,
            sketch_width: 1024,
            sketch_depth: 4,
            sample_window: 4096,
        }
    }
}

impl FrequencyConfig {
    /// Validates the tuning.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the width is not a power of
    /// two.
    pub fn validate(&self) {
        assert!(
            self.sketch_width.is_power_of_two(),
            "FrequencyConfig: sketch_width must be a power of two, got {}",
            self.sketch_width
        );
        assert!(self.sketch_depth > 0, "FrequencyConfig: depth must be > 0");
        assert!(
            self.ring_capacity > 0,
            "FrequencyConfig: ring_capacity must be > 0"
        );
        assert!(
            self.sample_window > 0,
            "FrequencyConfig: sample_window must be > 0"
        );
    }
}

/// The splitmix64 finisher: a fast, well-mixed `u64 -> u64` permutation.
pub(crate) fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Count-min sketch over 8-bit saturating counters.
#[derive(Debug)]
struct CountMinSketch {
    /// `depth` rows of `width` counters, row-major.
    counters: Vec<u8>,
    width: usize,
    row_seeds: Vec<u64>,
}

impl CountMinSketch {
    fn new(width: usize, depth: usize, seed: u64) -> CountMinSketch {
        let root = SimRng::seed(seed);
        CountMinSketch {
            counters: vec![0; width * depth],
            width,
            row_seeds: (0..depth)
                .map(|row| root.split_index("cm-row", row as u64).seed_value())
                .collect(),
        }
    }

    fn slot(&self, row: usize, row_seed: u64, sig: u64) -> usize {
        row * self.width + (mix(sig ^ row_seed) as usize & (self.width - 1))
    }

    fn record(&mut self, sig: u64) {
        for row in 0..self.row_seeds.len() {
            let row_seed = self.row_seeds.get(row).copied().unwrap_or(0);
            let slot = self.slot(row, row_seed, sig);
            if let Some(c) = self.counters.get_mut(slot) {
                *c = c.saturating_add(1);
            }
        }
    }

    fn estimate(&self, sig: u64) -> u64 {
        self.row_seeds
            .iter()
            .enumerate()
            .map(|(row, &row_seed)| {
                self.counters
                    .get(self.slot(row, row_seed, sig))
                    .copied()
                    .unwrap_or(0) as u64
            })
            .min()
            .unwrap_or(0)
    }

    /// The reset operation: halve every counter so old history decays.
    fn halve(&mut self) {
        for c in &mut self.counters {
            *c >>= 1;
        }
    }
}

/// A small bloom filter guarding the sketch against one-hit wonders.
#[derive(Debug)]
struct Doorkeeper {
    bits: Vec<u64>,
    mask: u64,
    seed_a: u64,
    seed_b: u64,
}

impl Doorkeeper {
    fn new(width: usize, seed: u64) -> Doorkeeper {
        let root = SimRng::seed(seed);
        Doorkeeper {
            // One bit per sketch-width slot, packed into words.
            bits: vec![0; width.div_ceil(64)],
            mask: width as u64 - 1,
            seed_a: root.split("door-a").seed_value(),
            seed_b: root.split("door-b").seed_value(),
        }
    }

    fn probes(&self, sig: u64) -> (u64, u64) {
        (
            mix(sig ^ self.seed_a) & self.mask,
            mix(sig ^ self.seed_b) & self.mask,
        )
    }

    fn bit(&self, pos: u64) -> bool {
        self.bits
            .get((pos / 64) as usize)
            .is_some_and(|w| w & (1 << (pos % 64)) != 0)
    }

    fn set(&mut self, pos: u64) {
        if let Some(w) = self.bits.get_mut((pos / 64) as usize) {
            *w |= 1 << (pos % 64);
        }
    }

    fn contains(&self, sig: u64) -> bool {
        let (a, b) = self.probes(sig);
        self.bit(a) && self.bit(b)
    }

    /// Inserts `sig`; returns whether it was (probably) already present.
    fn insert(&mut self, sig: u64) -> bool {
        let (a, b) = self.probes(sig);
        let present = self.bit(a) && self.bit(b);
        self.set(a);
        self.set(b);
        present
    }

    fn clear(&mut self) {
        self.bits.fill(0);
    }
}

/// The assembled admission filter: lossy ring in front, doorkeeper and
/// sketch behind, periodic halving reset.
#[derive(Debug)]
pub(crate) struct TinyLfu {
    ring: AccessRing,
    doorkeeper: Doorkeeper,
    sketch: CountMinSketch,
    /// Accesses recorded since the last reset.
    samples: u64,
    sample_window: u64,
}

impl TinyLfu {
    /// Builds the filter; `seed` must derive from the sim seed split so
    /// two runs with the same master seed agree on every estimate.
    pub(crate) fn new(config: FrequencyConfig, seed: u64) -> TinyLfu {
        config.validate();
        let root = SimRng::seed(seed);
        TinyLfu {
            ring: AccessRing::new(config.ring_capacity),
            doorkeeper: Doorkeeper::new(config.sketch_width, root.split("doorkeeper").seed_value()),
            sketch: CountMinSketch::new(
                config.sketch_width,
                config.sketch_depth,
                root.split("sketch").seed_value(),
            ),
            samples: 0,
            sample_window: config.sample_window,
        }
    }

    /// Hot-path access note: one ring push, no hashing.
    pub(crate) fn note(&mut self, sig: u64) {
        self.ring.push(sig);
    }

    /// Drains the ring into the sketch (called off the lookup hot path,
    /// at the next insert).
    pub(crate) fn flush(&mut self) {
        // Split borrow: drain the ring while recording into the
        // doorkeeper/sketch fields.
        let mut pending = std::mem::replace(&mut self.ring, AccessRing::new(1));
        pending.drain(|sig| self.record(sig));
        self.ring = pending;
    }

    /// Records one access immediately (doorkeeper first: a signature's
    /// first occurrence only sets the doorkeeper bit, so one-hit wonders
    /// never reach the sketch).
    pub(crate) fn record(&mut self, sig: u64) {
        if self.doorkeeper.insert(sig) {
            self.sketch.record(sig);
        }
        self.samples += 1;
        if self.samples >= self.sample_window {
            self.sketch.halve();
            self.doorkeeper.clear();
            self.samples /= 2;
        }
    }

    /// Estimated access frequency of `sig` over the recent window.
    pub(crate) fn estimate(&self, sig: u64) -> u64 {
        self.sketch.estimate(sig) + u64::from(self.doorkeeper.contains(sig))
    }

    /// Pending (un-flushed) access events.
    #[cfg(test)]
    pub(crate) fn pending(&self) -> usize {
        self.ring.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lfu() -> TinyLfu {
        TinyLfu::new(FrequencyConfig::default(), 42)
    }

    #[test]
    fn repeated_signature_estimates_higher_than_one_off() {
        let mut lfu = lfu();
        for _ in 0..10 {
            lfu.record(111);
        }
        lfu.record(222);
        assert!(lfu.estimate(111) > lfu.estimate(222));
        assert_eq!(lfu.estimate(333), 0, "never-seen signature estimates 0");
    }

    #[test]
    fn doorkeeper_absorbs_first_occurrence() {
        let mut lfu = lfu();
        lfu.record(7);
        // One occurrence: doorkeeper only, estimate exactly 1.
        assert_eq!(lfu.estimate(7), 1);
        lfu.record(7);
        // Second occurrence reaches the sketch.
        assert_eq!(lfu.estimate(7), 2);
    }

    #[test]
    fn note_is_deferred_until_flush() {
        let mut lfu = lfu();
        lfu.note(5);
        lfu.note(5);
        assert_eq!(lfu.pending(), 2);
        assert_eq!(lfu.estimate(5), 0, "notes invisible before flush");
        lfu.flush();
        assert_eq!(lfu.pending(), 0);
        assert_eq!(lfu.estimate(5), 2);
    }

    #[test]
    fn reset_halves_history() {
        let mut lfu = TinyLfu::new(
            FrequencyConfig {
                sample_window: 16,
                ..FrequencyConfig::default()
            },
            42,
        );
        for _ in 0..15 {
            lfu.record(9);
        }
        let before = lfu.estimate(9);
        lfu.record(9); // 16th sample triggers the reset
        let after = lfu.estimate(9);
        assert!(
            after < before,
            "reset must decay the estimate ({before} -> {after})"
        );
        assert!(after > 0, "but not erase it");
    }

    #[test]
    fn same_seed_same_estimates() {
        let mut a = TinyLfu::new(FrequencyConfig::default(), 1234);
        let mut b = TinyLfu::new(FrequencyConfig::default(), 1234);
        for sig in [3, 3, 5, 7, 7, 7, 11] {
            a.record(sig);
            b.record(sig);
        }
        for sig in [3, 5, 7, 11, 13] {
            assert_eq!(a.estimate(sig), b.estimate(sig), "sig {sig}");
        }
    }

    #[test]
    fn different_seeds_may_disagree_without_breaking_ordering() {
        let mut a = TinyLfu::new(FrequencyConfig::default(), 1);
        let mut b = TinyLfu::new(FrequencyConfig::default(), 2);
        for _ in 0..20 {
            a.record(42);
            b.record(42);
        }
        a.record(43);
        b.record(43);
        assert!(a.estimate(42) > a.estimate(43));
        assert!(b.estimate(42) > b.estimate(43));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_width_rejected() {
        FrequencyConfig {
            sketch_width: 1000,
            ..FrequencyConfig::default()
        }
        .validate();
    }
}
