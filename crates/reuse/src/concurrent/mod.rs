//! The sharded concurrent cache core.
//!
//! [`ShardedCache`] splits one logical [`ApproxCache`](crate::ApproxCache)
//! into `S` shards, each behind its own lock with its own flat-buffer
//! ANN index. Keys route to a shard by a *signature quantization
//! bucket*: the key is projected onto a fixed Rademacher (±1) direction,
//! the 1-D projection is quantized into cells, and the cell index hashes
//! into a signature — near keys land in the same cell, so a whole
//! neighbourhood lives in one shard and a lookup probes only its home
//! shard's ~`n/S`-entry index.
//!
//! The same signature is the frequency key for TinyLFU admission
//! ([`sketch`]): lookups push signatures into a lossy ring, inserts
//! drain the ring into a count-min sketch behind a bloom doorkeeper, and
//! at the eviction point a candidate only displaces the victim when its
//! estimated frequency strictly beats the victim's.
//!
//! Determinism contract (see DESIGN.md, "Store layer"): sketch seeds
//! derive from the sim seed split, shard merge order is fixed (ascending
//! shard index), per-shard id namespaces are disjoint arithmetic
//! progressions, and with one shard and no frequency config the whole
//! structure is operation-for-operation identical to the plain
//! single-threaded store — which is what keeps the golden results
//! byte-identical.
//!
//! Lock discipline: no shard lock is ever held across a call into
//! another shard (enforced statically by xtask rule L on this module).

mod ring;
mod sharded;
mod sketch;

pub use sharded::{route_signature, ConcurrentConfig, ShardedCache};
pub use sketch::FrequencyConfig;
