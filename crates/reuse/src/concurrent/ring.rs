//! A lossy ring buffer of access events.
//!
//! Recording every access in the count-min sketch would put four hashed
//! counter increments on the lookup hot path. Instead each access pushes
//! its routing signature into a fixed-capacity ring — one store, no
//! hashing — and the sketch catches up in batches at the next insert.
//! When the ring overflows, the *oldest* pending events are overwritten:
//! losing a sample only makes the frequency estimate slightly stale,
//! never wrong, which is the TinyLFU bargain.

/// Fixed-capacity, overwrite-oldest buffer of routing signatures.
#[derive(Debug)]
pub(crate) struct AccessRing {
    slots: Vec<u64>,
    /// Index of the oldest pending event once the ring has wrapped.
    start: usize,
    capacity: usize,
    /// Events overwritten before they were drained.
    dropped: u64,
}

impl AccessRing {
    /// A ring holding up to `capacity` pending events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub(crate) fn new(capacity: usize) -> AccessRing {
        assert!(capacity > 0, "AccessRing: capacity must be positive");
        AccessRing {
            slots: Vec::with_capacity(capacity),
            start: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Records one access; overwrites the oldest pending event when full.
    pub(crate) fn push(&mut self, sig: u64) {
        if self.slots.len() < self.capacity {
            self.slots.push(sig);
            return;
        }
        if let Some(slot) = self.slots.get_mut(self.start) {
            *slot = sig;
        }
        self.start = (self.start + 1) % self.capacity;
        self.dropped += 1;
    }

    /// Drains all pending events in arrival order into `f`, emptying the
    /// ring.
    pub(crate) fn drain(&mut self, mut f: impl FnMut(u64)) {
        let len = self.slots.len();
        for i in 0..len {
            if let Some(&sig) = self.slots.get((self.start + i) % len) {
                f(sig);
            }
        }
        self.slots.clear();
        self.start = 0;
    }

    /// Number of pending events.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Events lost to overwrites so far.
    #[cfg(test)]
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_arrival_order() {
        let mut ring = AccessRing::new(4);
        for sig in [10, 20, 30] {
            ring.push(sig);
        }
        assert_eq!(ring.len(), 3);
        let mut seen = Vec::new();
        ring.drain(|s| seen.push(s));
        assert_eq!(seen, vec![10, 20, 30]);
        assert_eq!(ring.len(), 0);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest_first() {
        let mut ring = AccessRing::new(3);
        for sig in [1, 2, 3, 4, 5] {
            ring.push(sig);
        }
        let mut seen = Vec::new();
        ring.drain(|s| seen.push(s));
        assert_eq!(seen, vec![3, 4, 5], "events 1 and 2 were overwritten");
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn reusable_after_drain() {
        let mut ring = AccessRing::new(2);
        ring.push(7);
        ring.drain(|_| {});
        ring.push(8);
        ring.push(9);
        ring.push(10);
        let mut seen = Vec::new();
        ring.drain(|s| seen.push(s));
        assert_eq!(seen, vec![9, 10]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        AccessRing::new(0);
    }
}
