//! Thread-safe cache handle.
//!
//! Peer queries read *another device's* cache. In the threaded experiment
//! driver each device owns a [`SharedCache`] clone of its cache handle, so
//! remote lookups lock briefly instead of requiring message-passing
//! through the event loop.
//!
//! Since the store rebuild, the handle wraps a
//! [`ShardedCache`](crate::concurrent::ShardedCache) rather than one
//! mutex around the whole store: with `S` shards, threads touching
//! different routing buckets never contend, and each lookup probes a
//! `~n/S`-entry index. [`SharedCache::new`] keeps the single-shard,
//! no-frequency configuration whose behaviour is operation-for-operation
//! identical to the old `Mutex<ApproxCache>` handle.

use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use features::FeatureVector;
use simcore::{SimDuration, SimTime};

use crate::concurrent::{ConcurrentConfig, ShardedCache};
use crate::entry::{CacheEntry, EntryId, EntrySource};
use crate::snapshot::CacheSnapshot;
use crate::stats::CacheStats;
use crate::store::{CacheConfig, InsertOutcome, LookupResult};
use crate::weight::Weighter;

/// A cloneable handle to a sharded concurrent cache.
pub struct SharedCache<L> {
    inner: Arc<ShardedCache<L>>,
}

impl<L> Clone for SharedCache<L> {
    fn clone(&self) -> Self {
        SharedCache {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<L> fmt::Debug for SharedCache<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedCache {{ .. }}")
    }
}

impl<L: Copy + Eq + Hash + fmt::Debug> SharedCache<L> {
    /// A shareable handle over a single-shard store with no frequency
    /// admission — behaviourally identical to the plain
    /// [`ApproxCache`](crate::ApproxCache) it replaces.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(config: CacheConfig) -> SharedCache<L> {
        SharedCache::with_concurrency(ConcurrentConfig::new(config))
    }

    /// A shareable handle with explicit sharding/admission configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn with_concurrency(config: ConcurrentConfig) -> SharedCache<L> {
        SharedCache {
            inner: Arc::new(ShardedCache::new(config)),
        }
    }

    /// Number of shards behind this handle.
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// A counter that advances whenever cached contents may have changed
    /// — see [`ShardedCache::contents_version`].
    pub fn contents_version(&self) -> u64 {
        self.inner.contents_version()
    }

    /// A self-contained read-mostly copy of this cache's current
    /// contents, built for peer queries against a fixed point in time
    /// (the fleet engine rebuilds one per device per round, gated on
    /// [`contents_version`](Self::contents_version)).
    ///
    /// The view keeps the owner's routing (shard count, bucket cell),
    /// index configuration and distance threshold, but admits
    /// unconditionally with headroom capacity so every owned entry
    /// survives the copy, and drops frequency admission — lookups against
    /// the view answer like the owner while their recency/statistics
    /// side-effects land on the discarded view instead of the owner.
    pub fn frozen_view(&self, now: SimTime) -> SharedCache<L> {
        let snapshot = self.inner.snapshot(now);
        let owner = self.inner.config();
        let mut cache = owner.cache.clone();
        // Per-shard capacity is `total / shards` rounded up; giving each
        // shard the full entry count guarantees no view-side eviction no
        // matter how skewed the routing is.
        cache.capacity = snapshot.len().max(1) * owner.shards.max(1);
        cache.admission = crate::AdmissionPolicy::admit_all();
        let view = SharedCache::with_concurrency(ConcurrentConfig {
            cache,
            shards: owner.shards,
            frequency: None,
            sketch_seed: owner.sketch_seed,
            bucket_cell: owner.bucket_cell,
        });
        view.set_distance_threshold(self.distance_threshold());
        view.restore(&snapshot, now);
        view
    }

    /// Looks up `key` in its home shard (see [`ShardedCache::lookup`]).
    pub fn lookup(&self, key: &FeatureVector, now: SimTime) -> LookupResult<L> {
        self.inner.lookup(key, now)
    }

    /// Inserts a result (see [`ShardedCache::insert`]).
    pub fn insert(
        &self,
        key: FeatureVector,
        label: L,
        confidence: f64,
        source: EntrySource,
        now: SimTime,
    ) -> InsertOutcome {
        self.inner.insert(key, label, confidence, source, now)
    }

    /// Merged operation counters across all shards.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Total entry count.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Removes every entry (statistics retained).
    pub fn clear(&self) {
        self.inner.clear();
    }

    /// Sweeps all shards for entries older than `max_age`.
    pub fn expire_older_than(&self, now: SimTime, max_age: SimDuration) -> usize {
        self.inner.expire_older_than(now, max_age)
    }

    /// The current A-kNN distance threshold.
    pub fn distance_threshold(&self) -> f64 {
        self.inner.distance_threshold()
    }

    /// Sets the A-kNN distance threshold on every shard.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive and finite.
    pub fn set_distance_threshold(&self, threshold: f64) {
        self.inner.set_distance_threshold(threshold);
    }

    /// Switches cost-aware eviction on or off.
    pub fn set_weighter(&self, weighter: Option<Arc<dyn Weighter<L>>>) {
        self.inner.set_weighter(weighter);
    }

    /// The nearest cached entry to `key` across all shards (read-only
    /// probe).
    pub fn peek_nearest(&self, key: &FeatureVector) -> Option<(f64, L)> {
        self.inner.peek_nearest(key)
    }

    /// The confidence of the entry with `id`, if still cached.
    pub fn entry_confidence(&self, id: EntryId) -> Option<f64> {
        self.inner.entry_confidence(id)
    }

    /// The `limit` most recently used entries, newest first.
    pub fn hottest(&self, limit: usize) -> Vec<CacheEntry<L>> {
        self.inner.hottest(limit)
    }

    /// A deterministic merged snapshot of all shards.
    pub fn snapshot(&self, now: SimTime) -> CacheSnapshot<L> {
        self.inner.snapshot(now)
    }

    /// The snapshot normalized for cross-run comparison (ids erased,
    /// entries sorted by key bits) — see
    /// [`ShardedCache::canonical_snapshot`].
    pub fn canonical_snapshot(&self, now: SimTime) -> CacheSnapshot<L> {
        self.inner.canonical_snapshot(now)
    }

    /// Restores a snapshot through the normal insert path.
    pub fn restore(&self, snapshot: &CacheSnapshot<L>, now: SimTime) -> usize {
        self.inner.restore(snapshot, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(components: &[f32]) -> FeatureVector {
        FeatureVector::from_vec(components.to_vec()).unwrap()
    }

    #[test]
    fn handle_shares_state_across_clones() {
        let shared: SharedCache<u32> = SharedCache::new(CacheConfig::new(4));
        let other = shared.clone();
        shared.insert(
            fv(&[0.0, 0.0]),
            5,
            0.9,
            EntrySource::LocalInference,
            SimTime::ZERO,
        );
        assert_eq!(other.len(), 1);
        let hit = other.lookup(&fv(&[0.1, 0.0]), SimTime::from_millis(1));
        assert_eq!(hit.label(), Some(&5));
        assert_eq!(shared.stats().hits, 1);
        assert!(!shared.is_empty());
        assert_eq!(shared.shard_count(), 1);
    }

    #[test]
    fn convenience_methods_cover_the_old_with_escape_hatch() {
        let shared: SharedCache<u32> = SharedCache::new(CacheConfig::new(4));
        shared.insert(fv(&[1.0]), 2, 0.9, EntrySource::Peer, SimTime::ZERO);
        let hottest = shared.hottest(1);
        assert_eq!(hottest.first().map(|e| e.label), Some(2));
        let id = hottest.first().map(|e| e.id).unwrap();
        assert_eq!(shared.entry_confidence(id), Some(0.9));
        assert_eq!(shared.entry_confidence(EntryId(999)), None);
        shared.set_distance_threshold(3.0);
        assert!((shared.distance_threshold() - 3.0).abs() < 1e-12);
        let (distance, label) = shared.peek_nearest(&fv(&[1.0])).unwrap();
        assert!(distance < 1e-9);
        assert_eq!(label, 2);
        shared.clear();
        assert!(shared.is_empty());
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let shared: SharedCache<u32> = SharedCache::new(
            CacheConfig::new(16).with_admission(crate::AdmissionPolicy::admit_all()),
        );
        for i in 0..6 {
            shared.insert(
                fv(&[i as f32 * 10.0, 0.0]),
                i,
                0.9,
                EntrySource::LocalInference,
                SimTime::from_millis(i as u64),
            );
        }
        let snap = shared.snapshot(SimTime::from_secs(1));
        assert_eq!(snap.len(), 6);
        let warm: SharedCache<u32> = SharedCache::new(
            CacheConfig::new(16).with_admission(crate::AdmissionPolicy::admit_all()),
        );
        assert_eq!(warm.restore(&snap, SimTime::from_secs(2)), 6);
        for i in 0..6u32 {
            let hit = warm.lookup(&fv(&[i as f32 * 10.0, 0.0]), SimTime::from_secs(3));
            assert_eq!(hit.label(), Some(&i), "restored key {i}");
        }
    }

    #[test]
    fn concurrent_inserts_do_not_lose_entries() {
        let shared: SharedCache<u32> = SharedCache::with_concurrency(
            ConcurrentConfig::new(
                CacheConfig::new(1024).with_admission(crate::AdmissionPolicy::admit_all()),
            )
            .with_shards(4),
        );
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let cache = shared.clone();
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        let x = (t * 1000 + i) as f32;
                        cache.insert(
                            fv(&[x, x]),
                            t,
                            0.9,
                            EntrySource::LocalInference,
                            SimTime::from_millis(i as u64),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.len(), 200);
        assert_eq!(shared.stats().inserts, 200);
    }

    #[test]
    fn contents_version_tracks_mutations_not_reads() {
        let shared: SharedCache<u32> = SharedCache::new(CacheConfig::new(4));
        let v0 = shared.contents_version();
        shared.insert(
            fv(&[0.0, 0.0]),
            5,
            0.9,
            EntrySource::LocalInference,
            SimTime::ZERO,
        );
        let v1 = shared.contents_version();
        assert!(v1 > v0, "insert bumps the version");
        let _ = shared.lookup(&fv(&[0.1, 0.0]), SimTime::from_millis(1));
        let _ = shared.peek_nearest(&fv(&[0.1, 0.0]));
        assert_eq!(shared.contents_version(), v1, "reads do not bump it");
        shared.clear();
        assert!(shared.contents_version() > v1, "clear bumps the version");
    }

    #[test]
    fn frozen_view_answers_like_the_owner_without_touching_it() {
        let shared: SharedCache<u32> = SharedCache::new(
            CacheConfig::new(16).with_admission(crate::AdmissionPolicy::admit_all()),
        );
        for i in 0..6 {
            shared.insert(
                fv(&[i as f32 * 10.0, 0.0]),
                i,
                0.9,
                EntrySource::LocalInference,
                SimTime::from_millis(i as u64),
            );
        }
        let stats_before = shared.stats();
        let version_before = shared.contents_version();
        let view = shared.frozen_view(SimTime::from_secs(1));
        assert_eq!(view.len(), shared.len());
        for i in 0..6u32 {
            let hit = view.lookup(&fv(&[i as f32 * 10.0, 0.0]), SimTime::from_secs(2));
            assert_eq!(hit.label(), Some(&i), "view key {i}");
        }
        assert_eq!(
            shared.stats(),
            stats_before,
            "view lookups leave the owner's statistics alone"
        );
        assert_eq!(shared.contents_version(), version_before);
        assert!(
            (view.distance_threshold() - shared.distance_threshold()).abs() < 1e-12,
            "view copies the owner's hit threshold"
        );
    }

    #[test]
    fn debug_representation_is_nonempty() {
        let shared: SharedCache<u32> = SharedCache::new(CacheConfig::new(4));
        assert_eq!(format!("{shared:?}"), "SharedCache { .. }");
    }
}
