//! Thread-safe cache handle.
//!
//! Peer queries read *another device's* cache. In the threaded experiment
//! driver each device owns a [`SharedCache`] clone of its cache handle, so
//! remote lookups lock briefly instead of requiring message-passing
//! through the event loop.

use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use parking_lot::Mutex;

use features::FeatureVector;
use simcore::SimTime;

use crate::entry::EntrySource;
use crate::stats::CacheStats;
use crate::store::{ApproxCache, InsertOutcome, LookupResult};

/// A cloneable, lock-protected handle to an [`ApproxCache`].
pub struct SharedCache<L> {
    inner: Arc<Mutex<ApproxCache<L>>>,
}

impl<L> Clone for SharedCache<L> {
    fn clone(&self) -> Self {
        SharedCache {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<L> fmt::Debug for SharedCache<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedCache {{ .. }}")
    }
}

impl<L: Copy + Eq + Hash + fmt::Debug> SharedCache<L> {
    /// Wraps a cache in a shareable handle.
    pub fn new(cache: ApproxCache<L>) -> SharedCache<L> {
        SharedCache {
            inner: Arc::new(Mutex::new(cache)),
        }
    }

    /// Locks and looks up (see [`ApproxCache::lookup`]).
    pub fn lookup(&self, key: &FeatureVector, now: SimTime) -> LookupResult<L> {
        self.inner.lock().lookup(key, now)
    }

    /// Locks and inserts (see [`ApproxCache::insert`]).
    pub fn insert(
        &self,
        key: FeatureVector,
        label: L,
        confidence: f64,
        source: EntrySource,
        now: SimTime,
    ) -> InsertOutcome {
        self.inner
            .lock()
            .insert(key, label, confidence, source, now)
    }

    /// Locks and snapshots the statistics.
    pub fn stats(&self) -> CacheStats {
        *self.inner.lock().stats()
    }

    /// Locks and reports the entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Locks and reports emptiness.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Runs `f` with exclusive access to the underlying cache — for
    /// operations not covered by the convenience methods.
    pub fn with<R>(&self, f: impl FnOnce(&mut ApproxCache<L>) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CacheConfig;

    fn fv(components: &[f32]) -> FeatureVector {
        FeatureVector::from_vec(components.to_vec()).unwrap()
    }

    #[test]
    fn handle_shares_state_across_clones() {
        let shared: SharedCache<u32> = SharedCache::new(ApproxCache::new(CacheConfig::new(4)));
        let other = shared.clone();
        shared.insert(
            fv(&[0.0, 0.0]),
            5,
            0.9,
            EntrySource::LocalInference,
            SimTime::ZERO,
        );
        assert_eq!(other.len(), 1);
        let hit = other.lookup(&fv(&[0.1, 0.0]), SimTime::from_millis(1));
        assert_eq!(hit.label(), Some(&5));
        assert_eq!(shared.stats().hits, 1);
        assert!(!shared.is_empty());
    }

    #[test]
    fn with_allows_arbitrary_access() {
        let shared: SharedCache<u32> = SharedCache::new(ApproxCache::new(CacheConfig::new(4)));
        shared.insert(fv(&[1.0]), 2, 0.9, EntrySource::Peer, SimTime::ZERO);
        let hottest_label = shared.with(|c| c.hottest(1)[0].label);
        assert_eq!(hottest_label, 2);
    }

    #[test]
    fn concurrent_inserts_do_not_lose_entries() {
        let shared: SharedCache<u32> = SharedCache::new(ApproxCache::new(
            CacheConfig::new(1024).with_admission(crate::AdmissionPolicy::admit_all()),
        ));
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let cache = shared.clone();
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        let x = (t * 1000 + i) as f32;
                        cache.insert(
                            fv(&[x, x]),
                            t,
                            0.9,
                            EntrySource::LocalInference,
                            SimTime::from_millis(i as u64),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.len(), 200);
        assert_eq!(shared.stats().inserts, 200);
    }

    #[test]
    fn debug_representation_is_nonempty() {
        let shared: SharedCache<u32> = SharedCache::new(ApproxCache::new(CacheConfig::new(4)));
        assert_eq!(format!("{shared:?}"), "SharedCache { .. }");
    }
}
