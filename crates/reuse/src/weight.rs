//! Cost-aware entry weights for eviction.
//!
//! A cache slot holding an InceptionV3 result is worth more than one
//! holding a SqueezeNet result: losing it costs a 620 ms recompute
//! instead of 45 ms. The [`Weighter`] trait turns that intuition into an
//! eviction key — the store (in weighted mode) evicts the entry with the
//! *lowest* weight first, so expensive-to-recompute results outlive
//! cheap ones.
//!
//! Weights are plain `u64`s so they can live inside an ordered set
//! (`f64` is not `Ord`) and must be a pure function of the entry: the
//! store caches the weight at insert time and only re-keys on
//! recency/frequency changes.

use simcore::SimDuration;

use crate::entry::CacheEntry;

/// Assigns an eviction weight to a cache entry. Higher weight = more
/// valuable = evicted later.
pub trait Weighter<L>: Send + Sync + std::fmt::Debug {
    /// The entry's weight. Must be deterministic and depend only on
    /// fields that are fixed at insert time (key, label, source,
    /// confidence) — *not* on `last_used`/`uses`, which change without
    /// the store re-querying the weighter.
    fn weight(&self, entry: &CacheEntry<L>) -> u64;
}

/// The paper-motivated default: weight = entry bytes × expected
/// recompute latency. Entry bytes are the key's storage footprint
/// (4 bytes per f32 dimension plus a fixed metadata overhead);
/// recompute latency comes from the model profile in `dnnsim::zoo`
/// that produced the label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecomputeCostWeighter {
    /// Expected latency to regenerate this entry by running the model.
    recompute: SimDuration,
}

/// Fixed per-entry metadata footprint (id, label, confidence, two
/// timestamps, use count, source tag) added to the key bytes.
const ENTRY_OVERHEAD_BYTES: u64 = 64;

impl RecomputeCostWeighter {
    /// Weighter for entries produced by a model with the given expected
    /// inference latency.
    pub fn new(recompute: SimDuration) -> RecomputeCostWeighter {
        RecomputeCostWeighter { recompute }
    }

    /// The configured recompute latency.
    pub fn recompute(&self) -> SimDuration {
        self.recompute
    }
}

impl<L> Weighter<L> for RecomputeCostWeighter {
    fn weight(&self, entry: &CacheEntry<L>) -> u64 {
        let bytes = entry.key.dim() as u64 * 4 + ENTRY_OVERHEAD_BYTES;
        // Clamp to ≥ 1 ms so a zero-latency profile still distinguishes
        // big entries from small ones.
        let millis = self.recompute.as_millis().max(1);
        bytes.saturating_mul(millis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{EntryId, EntrySource};
    use features::FeatureVector;
    use simcore::SimTime;

    fn entry(dim: usize) -> CacheEntry<u32> {
        CacheEntry {
            id: EntryId(0),
            key: FeatureVector::zeros(dim),
            label: 0,
            confidence: 0.9,
            inserted_at: SimTime::ZERO,
            last_used: SimTime::ZERO,
            uses: 0,
            source: EntrySource::LocalInference,
        }
    }

    #[test]
    fn expensive_model_outweighs_cheap_model() {
        let inception = RecomputeCostWeighter::new(SimDuration::from_millis(620));
        let squeeze = RecomputeCostWeighter::new(SimDuration::from_millis(45));
        let e = entry(64);
        assert!(Weighter::<u32>::weight(&inception, &e) > Weighter::<u32>::weight(&squeeze, &e));
        assert_eq!(inception.recompute(), SimDuration::from_millis(620));
    }

    #[test]
    fn bigger_keys_weigh_more_at_equal_latency() {
        let w = RecomputeCostWeighter::new(SimDuration::from_millis(100));
        assert!(Weighter::<u32>::weight(&w, &entry(256)) > Weighter::<u32>::weight(&w, &entry(8)));
    }

    #[test]
    fn zero_latency_clamps_to_one_milli() {
        let w = RecomputeCostWeighter::new(SimDuration::ZERO);
        let e = entry(16);
        assert_eq!(Weighter::<u32>::weight(&w, &e), 16 * 4 + 64);
    }
}
