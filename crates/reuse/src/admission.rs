//! Admission control: what is allowed into the cache.
//!
//! Two filters keep the cache useful: a **confidence floor** (caching a
//! low-confidence label would happily propagate a wrong answer to many
//! frames and, over peer sharing, to many devices), and **near-duplicate
//! refresh** (a key nearly identical to an existing same-label entry
//! refreshes that entry's recency/frequency metadata instead of inserting
//! a clone that wastes capacity and skews the k-NN vote).

use serde::{Deserialize, Serialize};

/// Admission policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Results below this confidence are not cached.
    pub min_confidence: f64,
    /// Peer-provided results below this confidence are not cached (held to
    /// a stricter bar than local ones, since errors propagate further).
    pub min_peer_confidence: f64,
    /// A new key within this distance of an existing entry with the same
    /// label refreshes that entry instead of inserting.
    pub dedup_distance: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        // The confidence floors are the accuracy-preserving mechanism of
        // the whole system: a cached wrong label is served for an entire
        // dwell (and, via peers, to other devices), so only results the
        // classifier is confident about may enter. Mobile classifiers
        // separate correct from confused predictions well by softmax
        // confidence, which is what these floors exploit.
        AdmissionPolicy {
            min_confidence: 0.75,
            min_peer_confidence: 0.8,
            dedup_distance: 0.25,
        }
    }
}

impl AdmissionPolicy {
    /// A policy that admits everything and never dedups — for baselines
    /// and tests.
    pub fn admit_all() -> AdmissionPolicy {
        AdmissionPolicy {
            min_confidence: 0.0,
            min_peer_confidence: 0.0,
            dedup_distance: 0.0,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if confidences are outside `[0, 1]` or the dedup distance is
    /// negative or non-finite.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.min_confidence),
            "AdmissionPolicy: min_confidence must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.min_peer_confidence),
            "AdmissionPolicy: min_peer_confidence must be in [0, 1]"
        );
        assert!(
            self.dedup_distance >= 0.0 && self.dedup_distance.is_finite(),
            "AdmissionPolicy: dedup_distance must be finite and non-negative"
        );
    }

    /// Whether a result with `confidence` from the given origin may enter
    /// the cache.
    pub fn admits(&self, confidence: f64, from_peer: bool) -> bool {
        let floor = if from_peer {
            self.min_peer_confidence
        } else {
            self.min_confidence
        };
        confidence >= floor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        AdmissionPolicy::default().validate();
        AdmissionPolicy::admit_all().validate();
    }

    #[test]
    fn confidence_floor_applies_per_origin() {
        let policy = AdmissionPolicy {
            min_confidence: 0.3,
            min_peer_confidence: 0.6,
            dedup_distance: 0.0,
        };
        assert!(policy.admits(0.4, false));
        assert!(!policy.admits(0.4, true));
        assert!(policy.admits(0.6, true));
        assert!(!policy.admits(0.2, false));
    }

    #[test]
    fn admit_all_admits_zero_confidence() {
        assert!(AdmissionPolicy::admit_all().admits(0.0, true));
    }

    #[test]
    #[should_panic(expected = "min_confidence must be in [0, 1]")]
    fn rejects_bad_confidence() {
        AdmissionPolicy {
            min_confidence: 1.5,
            ..AdmissionPolicy::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "dedup_distance")]
    fn rejects_negative_dedup() {
        AdmissionPolicy {
            dedup_distance: -1.0,
            ..AdmissionPolicy::default()
        }
        .validate();
    }
}
