//! Cache snapshots: persist and restore a cache's contents.
//!
//! The paper's cache is in-memory, but a mobile app is killed and
//! relaunched constantly; a deployment snapshots the cache on pause and
//! restores it on resume so the reuse state survives. Snapshots also
//! serve bulk transfer between devices (a "give me your whole hot set"
//! exchange after discovery).

use std::hash::Hash;

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use simcore::SimTime;

use crate::entry::CacheEntry;
use crate::store::ApproxCache;

/// A serializable copy of a cache's entries (not its configuration or
/// statistics — those belong to the running instance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot<L> {
    /// When the snapshot was taken.
    pub taken_at: SimTime,
    /// The entries, in unspecified order.
    pub entries: Vec<CacheEntry<L>>,
}

impl<L: Copy + Eq + Hash + std::fmt::Debug> CacheSnapshot<L> {
    /// Captures the current contents of `cache`.
    pub fn capture(cache: &ApproxCache<L>, now: SimTime) -> CacheSnapshot<L> {
        CacheSnapshot {
            taken_at: now,
            entries: cache.iter().cloned().collect(),
        }
    }

    /// Number of captured entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Restores the snapshot into `cache`, hottest entries first so that
    /// if the snapshot exceeds the cache's capacity the coldest entries
    /// are the ones that never make it in. Entries pass through the
    /// cache's normal admission and eviction machinery; per-entry
    /// use counts restart (the restored run is a new session).
    ///
    /// Returns the number of entries actually inserted (or absorbed as
    /// refreshes).
    pub fn restore_into(&self, cache: &mut ApproxCache<L>, now: SimTime) -> usize {
        let mut ordered: Vec<&CacheEntry<L>> = self.entries.iter().collect();
        ordered.sort_by_key(|e| std::cmp::Reverse((e.last_used, e.uses, e.id)));
        let mut restored = 0;
        for entry in ordered.into_iter().take(cache.capacity()) {
            let outcome = cache.insert(
                entry.key.clone(),
                entry.label,
                entry.confidence,
                entry.source,
                now,
            );
            if outcome.entry().is_some() {
                restored += 1;
            }
        }
        restored
    }
}

impl<L: Serialize> CacheSnapshot<L> {
    /// Serializes the snapshot as JSON.
    ///
    /// # Errors
    ///
    /// Returns a serialization error (only possible for exotic label
    /// types).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }
}

impl<L: DeserializeOwned> CacheSnapshot<L> {
    /// Parses a snapshot from JSON.
    ///
    /// # Errors
    ///
    /// Returns a parse error for malformed input.
    pub fn from_json(json: &str) -> Result<CacheSnapshot<L>, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use crate::entry::EntrySource;
    use crate::store::CacheConfig;
    use features::FeatureVector;

    fn fv(x: f32) -> FeatureVector {
        FeatureVector::from_vec(vec![x, 0.0]).unwrap()
    }

    fn filled_cache(n: usize) -> ApproxCache<u32> {
        let mut cache: ApproxCache<u32> =
            ApproxCache::new(CacheConfig::new(64).with_admission(AdmissionPolicy::admit_all()));
        for i in 0..n {
            cache.insert(
                fv(i as f32 * 10.0),
                i as u32,
                0.9,
                EntrySource::LocalInference,
                SimTime::from_millis(i as u64),
            );
        }
        cache
    }

    #[test]
    fn capture_restore_round_trip() {
        let mut original = filled_cache(8);
        let snapshot = CacheSnapshot::capture(&original, SimTime::from_secs(1));
        assert_eq!(snapshot.len(), 8);
        assert!(!snapshot.is_empty());

        let mut restored: ApproxCache<u32> =
            ApproxCache::new(CacheConfig::new(64).with_admission(AdmissionPolicy::admit_all()));
        let count = snapshot.restore_into(&mut restored, SimTime::from_secs(2));
        assert_eq!(count, 8);
        assert_eq!(restored.len(), 8);
        // Every original key still hits with the right label.
        for i in 0..8u32 {
            let hit = restored.lookup(&fv(i as f32 * 10.0), SimTime::from_secs(3));
            assert_eq!(hit.label(), Some(&i), "entry {i}");
        }
        // And the original cache is untouched by capture.
        assert_eq!(original.len(), 8);
        let _ = original.lookup(&fv(0.0), SimTime::from_secs(3));
    }

    #[test]
    fn json_round_trip() {
        let cache = filled_cache(3);
        let snapshot = CacheSnapshot::capture(&cache, SimTime::from_secs(1));
        let json = snapshot.to_json().unwrap();
        let parsed: CacheSnapshot<u32> = CacheSnapshot::from_json(&json).unwrap();
        assert_eq!(parsed, snapshot);
        assert!(CacheSnapshot::<u32>::from_json("nonsense").is_err());
    }

    #[test]
    fn restore_respects_capacity_keeping_hottest() {
        let mut big = filled_cache(16);
        // Touch entries 12..16 so they are the hottest.
        for i in 12..16u32 {
            let _ = big.lookup(&fv(i as f32 * 10.0), SimTime::from_secs(5));
        }
        let snapshot = CacheSnapshot::capture(&big, SimTime::from_secs(6));
        let mut small: ApproxCache<u32> =
            ApproxCache::new(CacheConfig::new(4).with_admission(AdmissionPolicy::admit_all()));
        let restored = snapshot.restore_into(&mut small, SimTime::from_secs(7));
        assert_eq!(restored, 4);
        assert_eq!(small.len(), 4);
        for i in 12..16u32 {
            let hit = small.lookup(&fv(i as f32 * 10.0), SimTime::from_secs(8));
            assert_eq!(hit.label(), Some(&i), "hot entry {i} must survive");
        }
    }

    #[test]
    fn restore_passes_admission() {
        let mut source: ApproxCache<u32> =
            ApproxCache::new(CacheConfig::new(8).with_admission(AdmissionPolicy::admit_all()));
        source.insert(fv(0.0), 1, 0.2, EntrySource::LocalInference, SimTime::ZERO);
        let snapshot = CacheSnapshot::capture(&source, SimTime::from_secs(1));
        // The destination enforces the default confidence floor: the
        // low-confidence entry is not restored.
        let mut strict: ApproxCache<u32> = ApproxCache::new(CacheConfig::new(8));
        let restored = snapshot.restore_into(&mut strict, SimTime::from_secs(2));
        assert_eq!(restored, 0);
        assert!(strict.is_empty());
    }

    #[test]
    fn expire_older_than_sweeps_and_counts() {
        let mut cache = filled_cache(10);
        // Entries were inserted at 0..9 ms; expire everything older than
        // 5 ms as of t=10ms (entries 0..=4).
        let dropped = cache.expire_older_than(
            SimTime::from_millis(10),
            simcore::SimDuration::from_millis(5),
        );
        assert_eq!(dropped, 5);
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.stats().expirations, 5);
        // Survivors still hit; expired keys miss.
        assert!(cache.lookup(&fv(90.0), SimTime::from_millis(11)).is_hit());
        assert!(!cache.lookup(&fv(0.0), SimTime::from_millis(11)).is_hit());
    }
}
