//! The claim-verification harness behind the `verify_claims` binary.
//!
//! Re-runs the headline checks (R-1 latency reduction, R-2 accuracy
//! retention, plus a peer-tier liveness check) against fresh simulations
//! and reports each as a [`ClaimCheck`]. Every run is traced, so a
//! failing claim carries a per-tier breakdown — path counts, per-path
//! latency, cache-miss reasons and peer-query outcomes — pointing at the
//! tier that regressed.

use std::num::NonZeroUsize;

use approxcache::{
    run, Detail, PipelineConfig, ResolutionPath, RunReport, Scenario, SimResult, SystemVariant,
};
use serde::Serialize;
use simcore::units::Millis;
use simcore::{SimDuration, TracePath};
use workloads::{multi, video};

/// R-1's bar: the full system must at least halve mean frame latency on
/// reuse-friendly scenarios.
pub const R1_MIN_LATENCY_REDUCTION: f64 = 0.5;

/// R-2's bar: accuracy may drop at most five points vs always-infer.
pub const R2_MIN_ACCURACY_DELTA: f64 = -0.05;

/// R-21's bar: with 30% of each device's timeline spent in radio
/// outages (plus crashes and poisoned advertisements), the resilient
/// full system must still cut mean latency by more than this vs
/// no-cache under the *same* faults.
pub const R21_MIN_OUTAGE_LATENCY_REDUCTION: f64 = 0.3;

/// The outage fraction the R-21 claim runs at.
pub const R21_OUTAGE_FRACTION: f64 = 0.3;

/// R-22's bar: with peers disabled, adding the shared edge cache must
/// lift the reuse rate by more than this (strictly positive — the edge
/// must contribute reuse the local caches alone cannot).
pub const R22_MIN_EDGE_REUSE_GAIN: f64 = 0.0;

/// One verified claim: `passed` iff `observed > required`.
#[derive(Debug, Clone, Serialize)]
pub struct ClaimCheck {
    /// Which headline claim this check belongs to.
    pub claim: &'static str,
    /// The scenario it ran on.
    pub scenario: String,
    /// Human-readable statement of the bar.
    pub requirement: String,
    /// The measured value.
    pub observed: f64,
    /// The bar the measured value must exceed.
    pub required: f64,
    /// Whether the bar was met.
    pub passed: bool,
    /// Trace-derived per-tier breakdown of the full-system run.
    pub breakdown: String,
}

/// Everything a verification pass produced: the checks plus the
/// full-variant reports (for JSON export).
#[derive(Debug)]
pub struct ClaimOutcome {
    /// All checks, in run order.
    pub checks: Vec<ClaimCheck>,
    /// The full-system report of every scenario that was verified.
    pub reports: Vec<RunReport>,
}

impl ClaimOutcome {
    /// True when every check met its bar.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The checks that failed.
    pub fn failures(&self) -> Vec<&ClaimCheck> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }
}

fn traced_run(
    scenario: &Scenario,
    variant: SystemVariant,
    seed: u64,
    mutate: &dyn Fn(&mut PipelineConfig),
) -> SimResult {
    let mut config = PipelineConfig::calibrated(scenario, seed).with_trace_capacity(Some(65_536));
    mutate(&mut config);
    match run(scenario, &config, variant, seed, Detail::Full) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// Renders the per-tier breakdown of a traced run: how every frame was
/// resolved and at what cost, why local lookups missed, and how the peer
/// tier behaved. This is what a failing claim prints so the regressed
/// tier is identifiable without re-running anything.
pub fn tier_breakdown(result: &SimResult) -> String {
    let report = &result.report;
    let mut out = String::new();
    for path in ResolutionPath::all() {
        let stats = report.path_latency_stats(path);
        out.push_str(&format!(
            "  {path}: {} frames ({:.1}%), mean {}, p95 {}\n",
            stats.count,
            report.path_fraction(path) * 100.0,
            Millis::new(stats.mean),
            Millis::new(stats.p95),
        ));
    }
    let misses: Vec<String> = report
        .miss_breakdown()
        .iter()
        .map(|(name, n)| format!("{name} {n}"))
        .collect();
    out.push_str(&format!("  local misses: {}\n", misses.join(", ")));

    let traces: Vec<_> = result.traces.iter().flatten().collect();
    let attempts: u64 = traces.iter().map(|t| u64::from(t.peer.attempts)).sum();
    let timeouts: u64 = traces.iter().map(|t| u64::from(t.peer.timeouts)).sum();
    let bytes: u64 = traces.iter().map(|t| t.peer.bytes).sum();
    let peer_hits = traces
        .iter()
        .filter(|t| t.path == TracePath::PeerHit)
        .count();
    out.push_str(&format!(
        "  peer tier: {attempts} queries, {peer_hits} hits, {timeouts} timeouts, {bytes} B\n"
    ));
    if attempts > 0 && timeouts == attempts {
        out.push_str("  => peer tier unreachable: every peer query timed out\n");
    }
    out
}

/// Runs every headline claim at `duration` per scenario, seeding from
/// `seed`, fanning the simulations across one worker per available core.
/// `mutate` is applied to each calibrated config before the run (the
/// binary passes a no-op; tests use it to break a tier on purpose).
pub fn run_claim_checks(
    duration: SimDuration,
    seed: u64,
    mutate: &(dyn Fn(&mut PipelineConfig) + Sync),
) -> ClaimOutcome {
    run_claim_checks_on(crate::parallel::default_threads(), duration, seed, mutate)
}

/// [`run_claim_checks`] on an explicit worker count. Every simulation is
/// an independent seeded job, so the outcome is byte-identical whatever
/// `threads` is — only the wall-clock changes.
pub fn run_claim_checks_on(
    threads: NonZeroUsize,
    duration: SimDuration,
    seed: u64,
    mutate: &(dyn Fn(&mut PipelineConfig) + Sync),
) -> ClaimOutcome {
    // Stage every scenario up front, submit all eleven simulations as one
    // batch, then assemble the checks from the in-order results. The
    // assembly below mirrors the sequential structure one-to-one; only
    // the execution is fanned out.
    let headline: Vec<Scenario> = video::headline_set()
        .into_iter()
        .map(|s| s.with_duration(duration))
        .collect();
    let museum = multi::museum(6).with_duration(duration);
    let stormy = multi::museum(6)
        .with_name("museum-x6-outage30")
        .with_duration(duration)
        .with_faults(crate::r21_faults(R21_OUTAGE_FRACTION));
    // R-21 runs with the resilience machinery armed on top of `mutate`.
    let resilient = |config: &mut PipelineConfig| {
        mutate(config);
        if let Some(peer) = config.peer.as_mut() {
            peer.resilience = Some(p2pnet::ResilienceConfig::recommended());
        }
    };

    let mut jobs: Vec<Box<dyn FnOnce() -> SimResult + Send + '_>> = Vec::new();
    for scenario in &headline {
        jobs.push(Box::new(move || {
            traced_run(scenario, SystemVariant::NoCache, seed, mutate)
        }));
        jobs.push(Box::new(move || {
            traced_run(scenario, SystemVariant::Full, seed, mutate)
        }));
    }
    jobs.push(Box::new(|| {
        traced_run(&museum, SystemVariant::Full, seed, mutate)
    }));
    jobs.push(Box::new(|| {
        traced_run(&stormy, SystemVariant::NoCache, seed, &resilient)
    }));
    jobs.push(Box::new(|| {
        traced_run(&stormy, SystemVariant::Full, seed, &resilient)
    }));
    // R-22 runs the museum with peers disabled, with and without the
    // shared edge tier, on top of `mutate`.
    let with_edge = |config: &mut PipelineConfig| {
        mutate(config);
        config.edge = Some(approxcache::EdgeConfig::default());
    };
    jobs.push(Box::new(|| {
        traced_run(&museum, SystemVariant::NoPeer, seed, mutate)
    }));
    jobs.push(Box::new(|| {
        traced_run(&museum, SystemVariant::NoPeer, seed, &with_edge)
    }));

    let mut results = crate::parallel::run_jobs_on(threads, jobs).into_iter();
    let mut next = || match results.next() {
        Some(result) => result,
        None => unreachable!("one result per submitted job"),
    };

    let mut checks = Vec::new();
    let mut reports = Vec::new();

    // R-1 and R-2 share the headline scenarios; the reuse-friendly
    // subset carries the latency claim, all four carry the accuracy one.
    let reuse_friendly = ["stationary", "slow-pan", "turn-and-look"];
    for scenario in &headline {
        let base = next();
        let full = next();
        let breakdown = tier_breakdown(&full);

        if reuse_friendly.contains(&scenario.name.as_str()) {
            let reduction = full.report.latency_reduction_vs(&base.report);
            checks.push(ClaimCheck {
                claim: "R-1",
                scenario: scenario.name.clone(),
                requirement: format!(
                    "full system cuts mean latency by more than {:.0}% vs no-cache",
                    R1_MIN_LATENCY_REDUCTION * 100.0
                ),
                observed: reduction,
                required: R1_MIN_LATENCY_REDUCTION,
                passed: reduction > R1_MIN_LATENCY_REDUCTION,
                breakdown: breakdown.clone(),
            });
        }

        let delta = full.report.accuracy_delta_vs(&base.report);
        checks.push(ClaimCheck {
            claim: "R-2",
            scenario: scenario.name.clone(),
            requirement: format!(
                "accuracy drops less than {:.0} points vs always-infer",
                -R2_MIN_ACCURACY_DELTA * 100.0
            ),
            observed: delta,
            required: R2_MIN_ACCURACY_DELTA,
            passed: delta > R2_MIN_ACCURACY_DELTA,
            breakdown,
        });
        reports.push(full.report);
    }

    // Peer-tier liveness: in the museum, collaboration must answer at
    // least some frames. This is the check that catches a dead radio.
    let full = next();
    let peer_fraction = full.report.path_fraction(ResolutionPath::PeerCache);
    checks.push(ClaimCheck {
        claim: "peer-tier",
        scenario: museum.name.clone(),
        requirement: "peers answer a positive fraction of museum frames".to_owned(),
        observed: peer_fraction,
        required: 0.0,
        passed: peer_fraction > 0.0,
        breakdown: tier_breakdown(&full),
    });
    reports.push(full.report);

    // R-21 resilience: the same museum under 30% radio outage, crashes
    // and ad poisoning, with the resilience machinery armed. The system
    // must still clearly beat no-cache, and the fault counters in the
    // breakdown prove the faults actually fired.
    let base = next();
    let full = next();
    let reduction = full.report.latency_reduction_vs(&base.report);
    let mut breakdown = tier_breakdown(&full);
    let faults = &full.report.faults;
    breakdown.push_str(&format!(
        "  faults: dark-frames {} crashes {} poisoned {} retries {} fallbacks {}\n",
        faults.outage_frames,
        faults.crashes,
        faults.poisoned_ads,
        faults.ad_retries,
        faults.peer_fallbacks
    ));
    checks.push(ClaimCheck {
        claim: "R-21",
        scenario: stormy.name.clone(),
        requirement: format!(
            "under {:.0}% outage the resilient system cuts mean latency by more than {:.0}% vs no-cache",
            R21_OUTAGE_FRACTION * 100.0,
            R21_MIN_OUTAGE_LATENCY_REDUCTION * 100.0
        ),
        observed: reduction,
        required: R21_MIN_OUTAGE_LATENCY_REDUCTION,
        passed: reduction > R21_MIN_OUTAGE_LATENCY_REDUCTION && faults.outage_frames > 0,
        breakdown,
    });
    reports.push(full.report);

    // R-22 edge tier: same museum, peers off, local caches identical —
    // the only difference is the shared edge cache a WAN hop away. It
    // must add reuse the local tiers alone cannot, and the merged edge
    // books (server + devices) must reconcile.
    let local_only = next();
    let edge_assisted = next();
    let gain = edge_assisted.report.reuse_rate() - local_only.report.reuse_rate();
    let edge_counters = edge_assisted.report.edge;
    let mut breakdown = tier_breakdown(&edge_assisted);
    breakdown.push_str(&format!("  edge: {edge_counters}\n"));
    checks.push(ClaimCheck {
        claim: "R-22",
        scenario: museum.name.clone(),
        requirement: format!(
            "with peers off, the edge tier lifts reuse rate by more than {:.0}% \
             with nonzero reconciling counters",
            R22_MIN_EDGE_REUSE_GAIN * 100.0
        ),
        observed: gain,
        required: R22_MIN_EDGE_REUSE_GAIN,
        passed: gain > R22_MIN_EDGE_REUSE_GAIN
            && !edge_counters.is_idle()
            && edge_counters.reconciles(),
        breakdown,
    });
    reports.push(edge_assisted.report);

    ClaimOutcome { checks, reports }
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::MASTER_SEED;
    use p2pnet::LinkSpec;

    fn short() -> SimDuration {
        SimDuration::from_secs(8)
    }

    #[test]
    fn healthy_configuration_passes_every_claim() {
        let outcome = run_claim_checks(short(), MASTER_SEED, &|_| {});
        assert!(outcome.all_passed(), "failures: {:#?}", outcome.failures());
        // Three reuse-friendly R-1 checks, four R-2 checks, one peer
        // check, one R-21 resilience check, one R-22 edge check.
        assert_eq!(outcome.checks.len(), 10);
        assert_eq!(outcome.reports.len(), 7);
        // The R-21 run must have actually injected faults — its report
        // carries the reconciling counters.
        let stormy = outcome
            .reports
            .iter()
            .find(|r| r.scenario == "museum-x6-outage30")
            .expect("R-21 report present");
        assert!(stormy.faults.outage_frames > 0, "outage never fired");
        // The R-22 run must have actually exercised the edge — its
        // report carries the reconciling edge books; every other report
        // stays edge-free.
        let edge_run = outcome
            .reports
            .iter()
            .find(|r| !r.edge.is_idle())
            .expect("R-22 report present");
        assert_eq!(edge_run.variant, "no-peer");
        assert!(edge_run.edge.reconciles(), "{}", edge_run.edge);
        assert!(edge_run.edge.queries_sent > 0);
        assert_eq!(
            outcome.reports.iter().filter(|r| !r.edge.is_idle()).count(),
            1,
            "only the edge-assisted run may carry edge counters"
        );
        // Every other report stays fault-free.
        for report in &outcome.reports {
            if report.scenario != "museum-x6-outage30" {
                assert!(
                    report.faults.is_idle(),
                    "{}: unexpected faults",
                    report.scenario
                );
            }
        }
        // Every check carries a usable breakdown.
        for check in &outcome.checks {
            assert!(
                check.breakdown.contains("peer tier:"),
                "{}",
                check.breakdown
            );
            assert!(check.breakdown.contains("local misses:"));
        }
    }

    #[test]
    fn parallel_checks_match_sequential_byte_for_byte() {
        let duration = SimDuration::from_secs(5);
        let sequential = run_claim_checks_on(
            NonZeroUsize::new(1).expect("positive"),
            duration,
            MASTER_SEED,
            &|_| {},
        );
        let parallel = run_claim_checks_on(
            NonZeroUsize::new(4).expect("positive"),
            duration,
            MASTER_SEED,
            &|_| {},
        );
        let as_json = |outcome: &ClaimOutcome| {
            let checks = serde_json::to_string(&outcome.checks).expect("serialize checks");
            let reports = serde_json::to_string(&outcome.reports).expect("serialize reports");
            (checks, reports)
        };
        assert_eq!(as_json(&sequential), as_json(&parallel));
    }

    #[test]
    fn dead_radio_fails_the_peer_claim_and_names_the_tier() {
        let outcome = run_claim_checks(short(), MASTER_SEED, &|config| {
            if let Some(peer) = config.peer.as_mut() {
                peer.link = LinkSpec {
                    loss_prob: 1.0,
                    ..LinkSpec::wifi_direct()
                };
            }
        });
        assert!(!outcome.all_passed());
        let peer_check = outcome
            .checks
            .iter()
            .find(|c| c.claim == "peer-tier")
            .expect("peer claim present");
        assert!(!peer_check.passed);
        assert_eq!(peer_check.observed, 0.0);
        assert!(
            peer_check.breakdown.contains("every peer query timed out"),
            "breakdown must identify the dead tier:\n{}",
            peer_check.breakdown
        );
        // The single-device claims are unaffected by a dead radio.
        assert!(outcome
            .checks
            .iter()
            .filter(|c| c.claim == "R-1")
            .all(|c| c.passed));
    }
}
