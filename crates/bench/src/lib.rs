//! Shared helpers for the experiment harness.
//!
//! Each `R-*` experiment from `EXPERIMENTS.md` is a binary in `src/bin/`
//! that prints its table and writes the same rows as CSV under
//! `results/`. The micro-benchmarks (`R-11`..`R-14`) are Criterion
//! benches under `benches/`.
//!
//! Experiment length is controlled by the `EXPERIMENT_SECONDS` environment
//! variable (default 30 simulated seconds), so `run_all` can do a quick
//! pass and a paper-faithful run can stretch it.

pub mod parallel;
pub mod perf;
pub mod sweep;
pub mod trajectory;
pub mod verify;

use std::path::PathBuf;

use simcore::table::Table;
use simcore::SimDuration;

/// The master seed all experiments derive from, so the whole suite is
/// reproducible end to end.
pub const MASTER_SEED: u64 = 20210701; // ICDCS 2021 proceedings month

/// Simulated seconds per run (override with `EXPERIMENT_SECONDS`).
pub fn experiment_duration() -> SimDuration {
    let secs = std::env::var("EXPERIMENT_SECONDS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(30)
        .max(1);
    SimDuration::from_secs(secs)
}

/// Where result CSVs land: `results/` under the workspace root (or the
/// current directory when run elsewhere).
pub fn results_dir() -> PathBuf {
    // The bench crate sits at crates/bench; results/ is two levels up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|workspace| workspace.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Runs a scenario at summary detail, treating an invalid configuration
/// as a programming error (experiment configs are hand-written).
///
/// # Panics
///
/// Panics when the scenario or network configuration fails validation.
pub fn summary_run(
    scenario: &approxcache::Scenario,
    config: &approxcache::PipelineConfig,
    variant: approxcache::SystemVariant,
    seed: u64,
) -> approxcache::RunReport {
    match approxcache::run(
        scenario,
        config,
        variant,
        seed,
        approxcache::Detail::Summary,
    ) {
        Ok(result) => result.report,
        Err(e) => panic!("{e}"),
    }
}

/// Like [`summary_run`] but keeps per-device outcome logs and traces.
///
/// # Panics
///
/// Panics when the scenario or network configuration fails validation.
pub fn detailed_run(
    scenario: &approxcache::Scenario,
    config: &approxcache::PipelineConfig,
    variant: approxcache::SystemVariant,
    seed: u64,
) -> approxcache::SimResult {
    match approxcache::run(scenario, config, variant, seed, approxcache::Detail::Full) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// The fault regime of the R-21 resilience experiment: outages covering
/// the given fraction of each device's timeline, occasional crashes, and
/// a sprinkle of poisoned advertisements. Shared between the `verify`
/// harness and the `r21_resilience` binary so the claim checks exactly
/// what the experiment sweeps.
pub fn r21_faults(outage_fraction: f64) -> p2pnet::FaultConfig {
    p2pnet::FaultConfig {
        outage_fraction,
        outage_mean: SimDuration::from_secs(2),
        crashes_per_device_minute: 1.0,
        poison_prob: 0.02,
        ..p2pnet::FaultConfig::default()
    }
}

/// Prints the experiment header, the table, and writes the CSV.
pub fn emit(experiment: &str, title: &str, table: &Table) {
    println!("== {experiment}: {title} ==\n");
    println!("{table}");
    let path = results_dir().join(format!("{experiment}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("wrote {}\n", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}\n", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_defaults_and_clamps() {
        // Do not mutate the environment (tests run in parallel); exercise
        // only the default path here.
        let d = experiment_duration();
        assert!(d >= SimDuration::from_secs(1));
    }

    #[test]
    fn results_dir_ends_with_results() {
        assert!(results_dir().ends_with("results"));
    }
}
