//! Wall-clock measurement helpers for the `perf_smoke` binary.
//!
//! This is the one corner of the workspace where reading the host clock
//! is legitimate: the perf trajectory measures *real* execution cost of
//! the hot path, not simulated time. xtask rule D bans `Instant` /
//! `SystemTime` everywhere else in the sim and harness crates; this file
//! and the `perf_smoke` binary are the only allowed homes.

use std::time::Instant;

/// Nanoseconds per call of `op`, averaged over `iters` back-to-back
/// calls (one clock read before, one after — the op itself must not
/// read the clock).
///
/// # Panics
///
/// Panics if `iters == 0`.
pub fn time_per_op_ns<F: FnMut()>(iters: u64, mut op: F) -> f64 {
    assert!(iters > 0, "time_per_op_ns: iters must be positive");
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The minimum over `rounds` measurements — the standard way to strip
/// scheduler noise from a microbenchmark (the fastest round is the one
/// with the least interference).
///
/// # Panics
///
/// Panics if `rounds == 0`.
pub fn best_of_ns<F: FnMut() -> f64>(rounds: u32, mut measure: F) -> f64 {
    assert!(rounds > 0, "best_of_ns: rounds must be positive");
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        best = best.min(measure());
    }
    best
}

/// Milliseconds of wall-clock spent running `op` once.
pub fn time_once_ms<F: FnOnce()>(op: F) -> f64 {
    let start = Instant::now();
    op();
    start.elapsed().as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_op_time_is_finite_and_positive() {
        let ns = time_per_op_ns(1000, || {
            std::hint::black_box(42u64);
        });
        assert!(ns.is_finite());
        assert!(ns >= 0.0);
    }

    #[test]
    fn best_of_takes_the_minimum() {
        let mut calls = 0u32;
        let best = best_of_ns(3, || {
            calls += 1;
            calls as f64 * 10.0
        });
        assert!((best - 10.0).abs() < 1e-9);
        assert_eq!(calls, 3);
    }

    #[test]
    fn once_timer_reports_milliseconds() {
        let ms = time_once_ms(|| {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert!(ms.is_finite());
        assert!(ms >= 0.0);
    }

    #[test]
    #[should_panic(expected = "iters must be positive")]
    fn zero_iters_rejected() {
        time_per_op_ns(0, || {});
    }
}
