//! The manifest-driven sweep orchestrator.
//!
//! A [`SweepManifest`] names a grid — motion profile × cache size ×
//! fault storm × device count — and [`expand`] unrolls it into
//! independent [`SweepJob`]s with deterministic slugs and per-job seeds
//! (`manifest.seed` split by job index, so any cell reproduces in
//! isolation). [`run_sweep`] plays the pending jobs on the worker pool
//! (each one a fleet run via [`approxcache::run_fleet`]), persists every
//! finished cell to `<state_dir>/<slug>.json` with an atomic
//! write-then-rename, and *skips* any cell whose state file already
//! parses — so an interrupted sweep resumes where it stopped, and a
//! finished sweep reruns for free.
//!
//! The merged [`SweepReport`] folds every cell's per-frame latencies
//! through the mergeable [`LatencyDigest`], which is how per-path
//! `Summary` statistics stay combinable across independently-executed
//! jobs: integer bucket counts sum in any order, and the summary is
//! derived once at the end.

use std::fs;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use approxcache::{run_fleet, FleetOptions, PipelineConfig, RunReport, Scenario, SystemVariant};
use imu::MotionProfile;
use p2pnet::FaultConfig;
use simcore::stats::Summary;
use simcore::{LatencyDigest, SimDuration, SimRng};

use crate::parallel::run_labeled_jobs_on;

/// A serde-able description of one sweep grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepManifest {
    /// Sweep name — also the default state-directory name.
    pub name: String,
    /// Master seed; each job derives its own stream from it.
    pub seed: u64,
    /// Simulated seconds per cell.
    pub duration_secs: u64,
    /// Motion-profile axis.
    pub profiles: Vec<MotionProfile>,
    /// Cache-capacity axis (entries per device).
    pub cache_sizes: Vec<usize>,
    /// Fault-storm axis: radio-outage fraction in `[0, 1)`; `0.0` runs
    /// calm. Storms also scale crash and ad-poisoning rates (see
    /// [`storm_faults`]).
    pub fault_storms: Vec<f64>,
    /// Population-size axis.
    pub device_counts: Vec<usize>,
    /// Shards per fleet run. Any value produces identical results (the
    /// fleet engine is shard-count invariant); more shards only change
    /// how the population is partitioned internally.
    pub shards: usize,
}

impl SweepManifest {
    /// A tiny 2×2 grid (profile × devices, one cache size, one calm
    /// storm) used by CI's sweep-smoke stage.
    pub fn smoke() -> SweepManifest {
        SweepManifest {
            name: "smoke".to_owned(),
            seed: crate::MASTER_SEED,
            duration_secs: 3,
            profiles: vec![
                MotionProfile::Stationary,
                MotionProfile::SlowPan { deg_per_sec: 20.0 },
            ],
            cache_sizes: vec![64],
            fault_storms: vec![0.0],
            device_counts: vec![2, 4],
            shards: 2,
        }
    }
}

/// One expanded grid cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepJob {
    /// Position in the expansion order (row-major over
    /// profiles × cache sizes × storms × device counts).
    pub index: usize,
    /// Deterministic state-file stem, e.g. `slow-pan-c64-f25-d8`.
    pub slug: String,
    /// Motion profile for every device in the cell.
    pub profile: MotionProfile,
    /// Cache capacity, entries per device.
    pub cache_size: usize,
    /// Outage fraction of the cell's fault storm (`0.0` = calm).
    pub fault_storm: f64,
    /// Devices in the cell.
    pub devices: usize,
    /// The cell's own seed, derived from the manifest seed and `index`.
    pub seed: u64,
}

/// One finished cell: the job plus its report, exactly what the state
/// file `<state_dir>/<slug>.json` holds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// The cell that ran.
    pub job: SweepJob,
    /// Its full run report.
    pub report: RunReport,
}

/// The merged result of one sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Manifest name.
    pub name: String,
    /// Total cells in the grid.
    pub jobs: usize,
    /// Cells executed by this invocation.
    pub completed_this_run: usize,
    /// Cells loaded from prior state files (the resume path).
    pub resumed_from_disk: usize,
    /// Every frame latency across the whole grid, as a mergeable
    /// digest — two sweep reports can be combined by merging these.
    pub frame_latency_digest: LatencyDigest,
    /// The digest's derived summary (ms).
    pub frame_latency_ms: Summary,
    /// Per-cell headline rows, in expansion order.
    pub rows: Vec<SweepRow>,
}

/// One cell's headline numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRow {
    /// Cell slug.
    pub slug: String,
    /// Fraction of frames served without full inference.
    pub reuse_rate: f64,
    /// Label accuracy against ground truth.
    pub accuracy: f64,
    /// Mean per-frame latency, ms.
    pub mean_latency_ms: f64,
}

/// The fault configuration a storm level induces: `storm` is the
/// radio-outage fraction; crashes and ad poisoning scale with it.
pub fn storm_faults(storm: f64) -> FaultConfig {
    if storm <= 0.0 {
        return FaultConfig::default();
    }
    FaultConfig {
        outage_fraction: storm,
        outage_mean: SimDuration::from_secs(2),
        crashes_per_device_minute: storm * 4.0,
        poison_prob: storm * 0.5,
        ..FaultConfig::default()
    }
}

/// Unrolls the manifest's grid into jobs, row-major over
/// profiles × cache sizes × storms × device counts. Slugs and seeds are
/// pure functions of the manifest, so expansion is stable across runs —
/// the property the resume path depends on.
pub fn expand(manifest: &SweepManifest) -> Vec<SweepJob> {
    let root = SimRng::seed(manifest.seed);
    let mut jobs = Vec::new();
    for profile in &manifest.profiles {
        for &cache_size in &manifest.cache_sizes {
            for &storm in &manifest.fault_storms {
                for &devices in &manifest.device_counts {
                    let index = jobs.len();
                    let storm_pct = (storm * 100.0).round() as i64;
                    jobs.push(SweepJob {
                        index,
                        slug: format!(
                            "{}-c{}-f{}-d{}",
                            profile.name(),
                            cache_size,
                            storm_pct,
                            devices
                        ),
                        profile: *profile,
                        cache_size,
                        fault_storm: storm,
                        devices,
                        seed: root.split_index("sweep-job", index as u64).seed_value(),
                    });
                }
            }
        }
    }
    jobs
}

/// The scenario a job describes.
pub fn job_scenario(job: &SweepJob, duration_secs: u64) -> Scenario {
    Scenario::multi_device(job.profile, job.devices)
        .with_name(&job.slug)
        .with_duration(SimDuration::from_secs(duration_secs.max(1)))
        .with_faults(storm_faults(job.fault_storm))
}

/// Runs one cell to completion.
fn run_job(job: &SweepJob, duration_secs: u64, shards: usize) -> RunReport {
    let scenario = job_scenario(job, duration_secs);
    let mut config = PipelineConfig::calibrated(&scenario, job.seed);
    config.cache.capacity = job.cache_size.max(1);
    // One worker per fleet run: the sweep pool already saturates the
    // machine, and the report is thread-count invariant anyway.
    let options = FleetOptions {
        shards: shards.max(1),
        threads: NonZeroUsize::MIN,
    };
    match run_fleet(&scenario, &config, SystemVariant::Full, job.seed, &options) {
        Ok(report) => report,
        Err(e) => panic!("sweep job {}: {e}", job.slug),
    }
}

/// The state file a job persists to.
fn state_path(state_dir: &Path, job: &SweepJob) -> PathBuf {
    state_dir.join(format!("{}.json", job.slug))
}

/// Loads a previously-completed cell, tolerating anything short of a
/// parseable record (missing file, torn write, schema drift) by
/// reporting the job as pending.
fn load_record(state_dir: &Path, job: &SweepJob) -> Option<JobRecord> {
    let text = fs::read_to_string(state_path(state_dir, job)).ok()?;
    let record: JobRecord = serde_json::from_str(&text).ok()?;
    // A slug collision or hand-edited file must not masquerade as this
    // cell's result.
    (record.job.slug == job.slug && record.job.seed == job.seed).then_some(record)
}

/// Persists one finished cell atomically (write to a temp name, then
/// rename), so a sweep killed mid-write never leaves a state file that
/// half-parses.
fn store_record(state_dir: &Path, record: &JobRecord) {
    let path = state_path(state_dir, &record.job);
    let tmp = path.with_extension("json.tmp");
    let text = match serde_json::to_string_pretty(record) {
        Ok(text) => text,
        Err(e) => panic!("sweep job {}: serialize failed: {e}", record.job.slug),
    };
    if let Err(e) = fs::write(&tmp, text) {
        panic!("sweep job {}: write failed: {e}", record.job.slug);
    }
    if let Err(e) = fs::rename(&tmp, &path) {
        panic!("sweep job {}: rename failed: {e}", record.job.slug);
    }
}

/// Expands the manifest, runs every cell not already on disk, persists
/// each finished cell, and returns the merged report (also written to
/// `<state_dir>/sweep.json`).
///
/// # Panics
///
/// Panics if the state directory cannot be created or a cell's scenario
/// fails validation — sweep manifests are operator-written.
pub fn run_sweep(manifest: &SweepManifest, state_dir: &Path, threads: NonZeroUsize) -> SweepReport {
    if let Err(e) = fs::create_dir_all(state_dir) {
        panic!(
            "sweep {}: cannot create {}: {e}",
            manifest.name,
            state_dir.display()
        );
    }
    let jobs = expand(manifest);
    let mut records: Vec<Option<JobRecord>> =
        jobs.iter().map(|job| load_record(state_dir, job)).collect();
    let resumed = records.iter().filter(|r| r.is_some()).count();

    let pending: Vec<SweepJob> = jobs
        .iter()
        .zip(&records)
        .filter(|(_, record)| record.is_none())
        .map(|(job, _)| job.clone())
        .collect();
    let completed = pending.len();
    let fresh: Vec<JobRecord> = run_labeled_jobs_on(
        threads,
        pending
            .into_iter()
            .map(|job| {
                let label = format!("sweep:{}", job.slug);
                let duration = manifest.duration_secs;
                let shards = manifest.shards;
                let state_dir = state_dir.to_path_buf();
                let run = move || {
                    let report = run_job(&job, duration, shards);
                    let record = JobRecord { job, report };
                    store_record(&state_dir, &record);
                    record
                };
                (label, run)
            })
            .collect(),
    );
    for record in fresh {
        if let Some(slot) = records.get_mut(record.job.index) {
            *slot = Some(record);
        }
    }

    let mut digest = LatencyDigest::new();
    let mut rows = Vec::with_capacity(jobs.len());
    for record in records.iter().flatten() {
        for &ms in &record.report.latencies_ms {
            digest.record_ms(ms);
        }
        rows.push(SweepRow {
            slug: record.job.slug.clone(),
            reuse_rate: record.report.reuse_rate(),
            accuracy: record.report.accuracy,
            mean_latency_ms: record.report.latency_ms.mean,
        });
    }
    let report = SweepReport {
        name: manifest.name.clone(),
        jobs: jobs.len(),
        completed_this_run: completed,
        resumed_from_disk: resumed,
        frame_latency_ms: digest.to_summary(),
        frame_latency_digest: digest,
        rows,
    };
    let merged_path = state_dir.join("sweep.json");
    match serde_json::to_string_pretty(&report) {
        Ok(text) => {
            if let Err(e) = fs::write(&merged_path, text) {
                panic!(
                    "sweep {}: write {} failed: {e}",
                    manifest.name,
                    merged_path.display()
                );
            }
        }
        Err(e) => panic!("sweep {}: serialize failed: {e}", manifest.name),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_manifest(dir_tag: &str) -> SweepManifest {
        SweepManifest {
            name: format!("test-{dir_tag}"),
            seed: 77,
            duration_secs: 2,
            profiles: vec![MotionProfile::Stationary],
            cache_sizes: vec![32, 64],
            fault_storms: vec![0.0, 0.3],
            device_counts: vec![2],
            shards: 2,
        }
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sweep-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn expansion_is_deterministic_and_row_major() {
        let manifest = tiny_manifest("expand");
        let a = expand(&manifest);
        let b = expand(&manifest);
        assert_eq!(a.len(), 4, "1 profile × 2 sizes × 2 storms × 1 count");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.slug, y.slug);
            assert_eq!(x.seed, y.seed);
        }
        let slugs: Vec<&str> = a.iter().map(|j| j.slug.as_str()).collect();
        assert_eq!(
            slugs,
            vec![
                "stationary-c32-f0-d2",
                "stationary-c32-f30-d2",
                "stationary-c64-f0-d2",
                "stationary-c64-f30-d2",
            ]
        );
        let seeds: std::collections::BTreeSet<u64> = a.iter().map(|j| j.seed).collect();
        assert_eq!(seeds.len(), a.len(), "per-job seeds must be distinct");
    }

    #[test]
    fn sweep_runs_persists_and_resumes() {
        let manifest = tiny_manifest("resume");
        let dir = scratch_dir("resume");
        let threads = NonZeroUsize::new(2).expect("positive");

        let first = run_sweep(&manifest, &dir, threads);
        assert_eq!(first.jobs, 4);
        assert_eq!(first.completed_this_run, 4);
        assert_eq!(first.resumed_from_disk, 0);
        assert_eq!(first.rows.len(), 4);
        assert!(first.frame_latency_ms.count > 0);
        assert!(dir.join("sweep.json").exists());

        // Second run: everything comes off disk, bytes unchanged.
        let second = run_sweep(&manifest, &dir, threads);
        assert_eq!(second.completed_this_run, 0);
        assert_eq!(second.resumed_from_disk, 4);
        assert_eq!(
            serde_json::to_string(&first.rows).expect("serializable"),
            serde_json::to_string(&second.rows).expect("serializable"),
        );

        // Drop one state file: exactly that cell reruns, same result.
        let victim = expand(&manifest).remove(1);
        fs::remove_file(state_path(&dir, &victim)).expect("state file exists");
        let third = run_sweep(&manifest, &dir, threads);
        assert_eq!(third.completed_this_run, 1);
        assert_eq!(third.resumed_from_disk, 3);
        assert_eq!(
            serde_json::to_string(&first.rows).expect("serializable"),
            serde_json::to_string(&third.rows).expect("serializable"),
        );

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_state_files_are_rerun_not_trusted() {
        let manifest = tiny_manifest("torn");
        let dir = scratch_dir("torn");
        fs::create_dir_all(&dir).expect("scratch dir");
        let job = expand(&manifest).remove(0);
        fs::write(state_path(&dir, &job), "{ not json").expect("write garbage");
        assert!(load_record(&dir, &job).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn storm_zero_is_idle() {
        assert!(storm_faults(0.0).is_idle());
        assert!(!storm_faults(0.25).is_idle());
    }
}
