//! Deterministic job pool — re-exported from [`simcore::parallel`].
//!
//! The pool moved down into `simcore` so the fleet engine in
//! `approxcache` can fan shards out on the same workers that
//! `verify_claims` and `run_all` use; experiment binaries keep
//! addressing it as `bench::parallel`.

pub use simcore::parallel::{default_threads, run_jobs, run_jobs_on, run_labeled_jobs_on};
