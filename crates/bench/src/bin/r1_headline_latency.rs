//! R-1 — the headline result: average per-frame latency of NoCache vs
//! ExactCache vs LocalApprox vs Full across the four standard scenarios,
//! with the per-scenario latency reduction the abstract summarizes as
//! "up to 94%".

use bench::{emit, experiment_duration, MASTER_SEED};
use simcore::table::{fnum, fpct, Table};
use workloads::{run_matrix_parallel, sweep::cell, video};

use approxcache::SystemVariant;

fn main() {
    let duration = experiment_duration();
    let scenarios: Vec<_> = video::headline_set()
        .into_iter()
        .map(|s| s.with_duration(duration))
        .collect();
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let cells = run_matrix_parallel(
        &scenarios,
        &SystemVariant::headline_set(),
        MASTER_SEED,
        workers,
    );

    let mut table = Table::new(vec![
        "scenario",
        "variant",
        "mean_ms",
        "p95_ms",
        "accuracy",
        "reuse",
        "latency_reduction",
    ]);
    let mut best_reduction: f64 = 0.0;
    for scenario in &scenarios {
        let baseline = cell(&cells, &scenario.name, SystemVariant::NoCache)
            .expect("baseline ran")
            .report
            .clone();
        for variant in SystemVariant::headline_set() {
            let report = &cell(&cells, &scenario.name, variant)
                .expect("cell ran")
                .report;
            let reduction = report.latency_reduction_vs(&baseline);
            if variant == SystemVariant::Full {
                best_reduction = best_reduction.max(reduction);
            }
            table.row(vec![
                scenario.name.clone(),
                variant.to_string(),
                fnum(report.latency_ms.mean, 2),
                fnum(report.latency_ms.p95, 2),
                fpct(report.accuracy),
                fpct(report.reuse_rate()),
                fpct(reduction),
            ]);
        }
    }
    emit(
        "r1_headline_latency",
        "average latency across scenarios",
        &table,
    );
    println!(
        "best full-system average-latency reduction: {} (paper: up to 94%)",
        fpct(best_reduction)
    );
}
