//! R-21 (extension) — graceful degradation under injected faults: the
//! museum scenario swept over radio-outage fractions, with the full
//! system run both bare and with the resilience layer armed
//! (advertisement retry, dead-peer circuit breaker, dark fallback), vs
//! the no-cache baseline under the *same* faults. The fault counters in
//! the last columns reconcile the injected episodes with what the
//! devices actually absorbed.

use approxcache::prelude::*;
use bench::{emit, experiment_duration, r21_faults, summary_run, MASTER_SEED};
use simcore::table::{fnum, fpct, Table};

fn main() {
    let duration = experiment_duration();
    let mut table = Table::new(vec![
        "outage",
        "system",
        "mean_ms",
        "accuracy",
        "reuse",
        "peer_hits",
        "dark_frames",
        "crashes",
        "poisoned",
        "retries",
        "fallbacks",
    ]);

    for outage in [0.0, 0.15, 0.3] {
        let mut scenario = workloads::multi::museum(6)
            .with_name(&format!("museum-outage{}", (outage * 100.0) as u32))
            .with_duration(duration);
        if outage > 0.0 {
            scenario = scenario.with_faults(r21_faults(outage));
        }
        let base = PipelineConfig::calibrated(&scenario, MASTER_SEED);
        let mut armed = base.clone();
        if let Some(peer) = armed.peer.as_mut() {
            peer.resilience = Some(ResilienceConfig::recommended());
        }

        let no_cache = summary_run(&scenario, &base, SystemVariant::NoCache, MASTER_SEED);
        let bare = summary_run(&scenario, &base, SystemVariant::Full, MASTER_SEED);
        let resilient = summary_run(&scenario, &armed, SystemVariant::Full, MASTER_SEED);

        for (label, report) in [
            ("no-cache", &no_cache),
            ("full", &bare),
            ("full+resilience", &resilient),
        ] {
            table.row(vec![
                fpct(outage),
                label.into(),
                fnum(report.latency_ms.mean, 2),
                fpct(report.accuracy),
                fpct(report.reuse_rate()),
                fpct(report.path_fraction(ResolutionPath::PeerCache)),
                report.faults.outage_frames.to_string(),
                report.faults.crashes.to_string(),
                report.faults.poisoned_ads.to_string(),
                report.faults.ad_retries.to_string(),
                report.faults.peer_fallbacks.to_string(),
            ]);
        }
    }
    emit(
        "r21_resilience",
        "fault injection: outage sweep, bare vs resilient (museum x6)",
        &table,
    );
}
