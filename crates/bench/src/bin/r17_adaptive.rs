//! R-17 (extension) — runtime threshold adaptation: start the system with
//! a badly miscalibrated distance threshold and watch the sampled-audit
//! controller recover accuracy, compared against the same miscalibration
//! without adaptation and against an offline-calibrated reference.

use ann::AknnConfig;
use approxcache::prelude::*;
use approxcache::AdaptiveConfig;
use bench::{emit, experiment_duration, MASTER_SEED};
use simcore::table::{fnum, fpct, Table};
use workloads::video;

fn main() {
    let scenario = video::slow_pan().with_duration(experiment_duration() * 2);
    let calibrated = PipelineConfig::calibrated(&scenario, MASTER_SEED);
    let good_threshold = calibrated.cache.aknn.distance_threshold;

    let mut table = Table::new(vec![
        "config",
        "start_threshold",
        "accuracy",
        "reuse",
        "mean_ms",
    ]);

    let mut run = |label: &str, start: f64, adaptive: Option<AdaptiveConfig>| {
        let config = calibrated
            .clone()
            .with_cache(calibrated.cache.clone().with_aknn(AknnConfig {
                distance_threshold: start,
                ..calibrated.cache.aknn
            }))
            .with_adaptive(adaptive);
        let report = bench::summary_run(&scenario, &config, SystemVariant::Full, MASTER_SEED);
        table.row(vec![
            label.into(),
            fnum(start, 2),
            fpct(report.accuracy),
            fpct(report.reuse_rate()),
            fnum(report.latency_ms.mean, 2),
        ]);
    };

    run("calibrated", good_threshold, None);
    let loose = good_threshold * 2.2;
    run("loose-static", loose, None);
    run("loose-adaptive", loose, Some(AdaptiveConfig::default()));
    let tight = good_threshold * 0.2;
    run("tight-static", tight, None);
    run("tight-adaptive", tight, Some(AdaptiveConfig::default()));

    emit(
        "r17_adaptive",
        "audit-driven threshold adaptation from a miscalibrated start (slow pan)",
        &table,
    );
}
