//! R-20 (extension) — big/little cascades × caching: the third classic
//! mobile-inference optimization (after quantization, R-18) composed with
//! the cache. The cascade cheapens misses; the cache removes repeats; the
//! combination is strictly better than either alone on miss-heavy
//! streams.

use approxcache::prelude::*;
use bench::{emit, experiment_duration, MASTER_SEED};
use simcore::table::{fnum, fpct, Table};
use workloads::video;

fn main() {
    // Walking tour: the most miss-heavy standard scenario, with the
    // heavyweight model where a cascade matters most.
    let scenario = video::walking_tour().with_duration(experiment_duration());
    let big_only =
        PipelineConfig::calibrated(&scenario, MASTER_SEED).with_model(dnnsim::zoo::inception_v3());
    let cascaded = big_only
        .clone()
        .with_cascade(dnnsim::zoo::squeezenet(), 0.8);

    let mut table = Table::new(vec![
        "backend",
        "system",
        "mean_ms",
        "miss_path_ms",
        "accuracy",
        "energy_mJ",
    ]);
    for (label, config) in [
        ("inception_v3", &big_only),
        ("squeezenet+inception_v3", &cascaded),
    ] {
        for variant in [SystemVariant::NoCache, SystemVariant::Full] {
            let report = bench::summary_run(&scenario, config, variant, MASTER_SEED);
            table.row(vec![
                label.into(),
                variant.to_string(),
                fnum(report.latency_ms.mean, 2),
                fnum(
                    report
                        .path_mean_latency(ResolutionPath::FullInference)
                        .value(),
                    1,
                ),
                fpct(report.accuracy),
                fnum(report.mean_energy.value(), 1),
            ]);
        }
    }
    emit(
        "r20_cascade",
        "big/little cascade x approximate caching (walking tour)",
        &table,
    );
}
