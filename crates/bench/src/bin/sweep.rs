//! Manifest-driven sweep runner.
//!
//! ```sh
//! cargo run -p bench --bin sweep -- path/to/manifest.json [state-dir]
//! cargo run -p bench --bin sweep -- --smoke [state-dir]
//! ```
//!
//! Expands the manifest's scenario × cache-size × fault-storm ×
//! device-count grid into fleet jobs, runs the ones without a state file
//! under `state-dir` (default `results/sweeps/<name>/`), and writes the
//! merged report to `<state-dir>/sweep.json`. Rerunning skips completed
//! cells, so an interrupted sweep resumes where it stopped.

use std::num::NonZeroUsize;
use std::path::PathBuf;

use bench::parallel::default_threads;
use bench::sweep::{run_sweep, SweepManifest};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (manifest, state_arg) = match args.first().map(String::as_str) {
        Some("--smoke") => (SweepManifest::smoke(), args.get(1)),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("sweep: cannot read {path}: {e}"));
            let manifest: SweepManifest = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("sweep: cannot parse {path}: {e}"));
            (manifest, args.get(1))
        }
        None => {
            eprintln!("usage: sweep <manifest.json> [state-dir]");
            eprintln!("       sweep --smoke [state-dir]");
            std::process::exit(2);
        }
    };
    let state_dir = state_arg
        .map(PathBuf::from)
        .unwrap_or_else(|| bench::results_dir().join("sweeps").join(&manifest.name));
    let threads: NonZeroUsize = default_threads();

    println!(
        "sweep '{}': {} profiles x {} cache sizes x {} storms x {} device counts, state in {}",
        manifest.name,
        manifest.profiles.len(),
        manifest.cache_sizes.len(),
        manifest.fault_storms.len(),
        manifest.device_counts.len(),
        state_dir.display(),
    );
    let report = run_sweep(&manifest, &state_dir, threads);
    println!(
        "{} cells: {} ran now, {} resumed from disk",
        report.jobs, report.completed_this_run, report.resumed_from_disk
    );
    for row in &report.rows {
        println!(
            "  {:<28} reuse {:>5.1}%  accuracy {:>5.1}%  latency {:>7.2} ms",
            row.slug,
            row.reuse_rate * 100.0,
            row.accuracy * 100.0,
            row.mean_latency_ms,
        );
    }
    println!(
        "grid-wide frame latency: mean {:.2} ms, p99 {:.2} ms over {} frames",
        report.frame_latency_ms.mean, report.frame_latency_ms.p99, report.frame_latency_ms.count
    );
}
