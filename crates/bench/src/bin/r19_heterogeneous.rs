//! R-19 (extension) — heterogeneous fleets: a museum of mixed budget and
//! flagship phones. Collaboration is a progressive subsidy: slow devices
//! gain the most because their avoided inferences are the most expensive,
//! while flagships lose almost nothing by sharing.

use approxcache::prelude::*;
use bench::{emit, experiment_duration, MASTER_SEED};
use dnnsim::DeviceClass;
use imu::MotionProfile;
use scene::SceneConfig;
use simcore::table::{fnum, fpct, Table};
use simcore::units::Millijoules;

fn main() {
    let scenario = Scenario::multi_device(
        MotionProfile::TurnAndLook {
            dwell_secs: 3.0,
            turn_deg: 45.0,
        },
        8,
    )
    .with_name("mixed-museum")
    .with_scene(SceneConfig {
        num_objects: 40,
        world_extent: 12.0,
        ..SceneConfig::default()
    })
    .with_duration(experiment_duration())
    .with_device_classes(vec![DeviceClass::Budget, DeviceClass::Flagship]);
    let config = PipelineConfig::calibrated(&scenario, MASTER_SEED);

    let mut table = Table::new(vec![
        "device_class",
        "system",
        "mean_ms",
        "accuracy",
        "energy_mJ",
    ]);
    for (label, variant) in [
        ("no-peer", SystemVariant::NoPeer),
        ("full", SystemVariant::Full),
    ] {
        let result = bench::detailed_run(&scenario, &config, variant, MASTER_SEED);
        for (class_name, offset) in [("budget", 0usize), ("flagship", 1)] {
            let outcomes: Vec<_> = result
                .per_device
                .iter()
                .skip(offset)
                .step_by(2)
                .flatten()
                .collect();
            let n = outcomes.len() as f64;
            let mean_ms = outcomes
                .iter()
                .map(|o| o.latency.as_millis_f64())
                .sum::<f64>()
                / n;
            let accuracy = outcomes.iter().filter(|o| o.is_correct()).count() as f64 / n;
            let energy = (outcomes.iter().map(|o| o.energy).sum::<Millijoules>() / n).value();
            table.row(vec![
                class_name.into(),
                label.into(),
                fnum(mean_ms, 2),
                fpct(accuracy),
                fnum(energy, 1),
            ]);
        }
    }
    emit(
        "r19_heterogeneous",
        "mixed budget/flagship museum: who gains from collaboration",
        &table,
    );
}
