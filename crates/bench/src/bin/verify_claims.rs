//! Re-verifies the paper's headline claims against fresh simulations and
//! exits nonzero if any regressed.
//!
//! Checks R-1 (the full system more than halves mean latency on
//! reuse-friendly scenarios), R-2 (accuracy within five points of
//! always-infer on the headline set), peer-tier liveness in the museum,
//! and R-21 (the resilient system still clearly beats no-cache under 30%
//! radio outage with crashes and poisoned advertisements). Failing
//! claims print a trace-derived per-tier breakdown so the regressed tier
//! is identifiable from the output alone. Reports and the check summary
//! land as JSON under `results/`.

use bench::verify::run_claim_checks;
use bench::{experiment_duration, results_dir, MASTER_SEED};
use simcore::table::{fnum, Table};

fn main() {
    let outcome = run_claim_checks(experiment_duration(), MASTER_SEED, &|_| {});

    let mut table = Table::new(vec!["claim", "scenario", "observed", "required", "status"]);
    for check in &outcome.checks {
        table.row(vec![
            check.claim.to_owned(),
            check.scenario.clone(),
            fnum(check.observed, 3),
            format!("> {}", fnum(check.required, 3)),
            if check.passed { "ok" } else { "FAIL" }.to_owned(),
        ]);
    }
    println!("== verify_claims: headline claims vs fresh runs ==\n");
    println!("{table}");

    let dir = results_dir();
    for report in &outcome.reports {
        match report.write_json(&dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write report JSON: {e}"),
        }
    }
    match serde_json::to_string_pretty(&outcome.checks) {
        Ok(json) => {
            let path = dir.join("verify_claims.json");
            match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        Err(e) => eprintln!("warning: could not serialize checks: {e}"),
    }

    let failures = outcome.failures();
    if failures.is_empty() {
        println!("\nall {} claims hold", outcome.checks.len());
        return;
    }
    eprintln!("\n{} claim(s) REGRESSED:", failures.len());
    for check in failures {
        eprintln!(
            "\n{} on {}: {} (observed {:.3}, required > {:.3})",
            check.claim, check.scenario, check.requirement, check.observed, check.required
        );
        eprintln!("{}", check.breakdown);
    }
    std::process::exit(1);
}
