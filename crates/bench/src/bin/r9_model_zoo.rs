//! R-9 — the model-zoo table: per-model baseline latency/accuracy, the
//! full system's speedup and accuracy delta, and the device-class effect.
//! Heavier models benefit *more* from caching — the avoided work is
//! bigger while the lookup cost is constant.

use approxcache::prelude::*;
use bench::{emit, experiment_duration, MASTER_SEED};
use dnnsim::DeviceClass;
use simcore::table::{fnum, fpct, Table};
use workloads::video;

fn main() {
    let scenario = video::turn_and_look().with_duration(experiment_duration());
    let base_config = PipelineConfig::calibrated(&scenario, MASTER_SEED);

    let mut table = Table::new(vec![
        "model", "device", "base_ms", "full_ms", "speedup", "base_acc", "full_acc",
    ]);
    for model in dnnsim::zoo::all() {
        for device in [DeviceClass::MidRange, DeviceClass::Budget] {
            let mut config = base_config.clone().with_model(model.clone());
            config.device_class = device;
            let base = bench::summary_run(&scenario, &config, SystemVariant::NoCache, MASTER_SEED);
            let full = bench::summary_run(&scenario, &config, SystemVariant::Full, MASTER_SEED);
            table.row(vec![
                model.name.to_string(),
                device.to_string(),
                fnum(base.latency_ms.mean, 1),
                fnum(full.latency_ms.mean, 2),
                format!("{:.1}x", base.latency_ms.mean / full.latency_ms.mean),
                fpct(base.accuracy),
                fpct(full.accuracy),
            ]);
        }
    }
    emit(
        "r9_model_zoo",
        "model zoo x device class (turn-and-look)",
        &table,
    );
}
