//! R-15 (extension) — lighting drift: as the scene's global appearance
//! drifts, cached keys age out of match range. Shows reuse/accuracy vs
//! drift rate, and that periodic age-based expiry keeps the cache clean
//! (dropping stale entries that would otherwise dilute k-NN votes)
//! without hurting the no-drift case.

use approxcache::prelude::*;
use approxcache::CacheExpiry;
use bench::{emit, experiment_duration, MASTER_SEED};
use scene::SceneConfig;
use simcore::table::{fnum, fpct, Table};
use simcore::SimDuration;
use workloads::video;

fn main() {
    let duration = experiment_duration() * 2;
    let mut table = Table::new(vec![
        "drift_per_s",
        "expiry",
        "reuse",
        "hit_rate",
        "accuracy",
        "mean_ms",
        "expired",
    ]);
    for &drift in &[0.0, 0.1, 0.3, 1.0, 3.0] {
        let scenario = video::turn_and_look()
            .with_name(&format!("drift-{drift}"))
            .with_scene(SceneConfig {
                drift_rate: drift,
                ..SceneConfig::default()
            })
            .with_duration(duration);
        let base = PipelineConfig::calibrated(&scenario, MASTER_SEED);
        for (label, expiry) in [
            ("off", None),
            (
                "10s",
                Some(CacheExpiry {
                    interval: SimDuration::from_secs(2),
                    max_age: SimDuration::from_secs(10),
                }),
            ),
        ] {
            let config = base.clone().with_expiry(expiry);
            let report = bench::summary_run(&scenario, &config, SystemVariant::Full, MASTER_SEED);
            table.row(vec![
                fnum(drift, 1),
                label.into(),
                fpct(report.reuse_rate()),
                fpct(report.cache.hit_rate()),
                fpct(report.accuracy),
                fnum(report.latency_ms.mean, 2),
                report.cache.expirations.to_string(),
            ]);
        }
    }
    emit(
        "r15_drift",
        "lighting drift vs cache staleness (turn-and-look)",
        &table,
    );
}
