//! R-7 — inertial-gate sensitivity: sweep the still-threshold and the
//! maximum reuse age on stationary and handheld streams, reporting the
//! fast-path share, the wrong-reuse rate it induces, and mean latency.

use approxcache::prelude::*;
use bench::{emit, experiment_duration, MASTER_SEED};
use imu::{ImuGate, MotionProfile};
use simcore::table::{fnum, fpct, Table};
use simcore::SimDuration;

fn main() {
    let duration = experiment_duration();
    let scenarios = [
        Scenario::single_device(MotionProfile::Stationary).with_duration(duration),
        Scenario::single_device(MotionProfile::HandheldJitter)
            .with_name("handheld")
            .with_duration(duration),
    ];
    let thresholds = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

    let mut table = Table::new(vec![
        "scenario",
        "still_threshold",
        "imu_fast_path",
        "accuracy",
        "mean_ms",
    ]);
    for scenario in &scenarios {
        let calibrated = PipelineConfig::calibrated(scenario, MASTER_SEED);
        for &threshold in &thresholds {
            let gate = ImuGate {
                still_threshold: threshold,
                ..ImuGate::default()
            };
            let config = calibrated.clone().with_gate(gate);
            let report = bench::summary_run(scenario, &config, SystemVariant::Full, MASTER_SEED);
            table.row(vec![
                scenario.name.clone(),
                fnum(threshold, 2),
                fpct(report.path_fraction(ResolutionPath::ImuReuse)),
                fpct(report.accuracy),
                fnum(report.latency_ms.mean, 2),
            ]);
        }
    }
    emit(
        "r7_imu_gate",
        "still-threshold sensitivity of the inertial gate",
        &table,
    );

    // Second axis: the reuse-age bound on a stationary camera over a
    // churning scene (how long may the fast path echo before the world
    // moves on underneath it?).
    let churny = workloads::video::object_churn().with_duration(duration);
    let calibrated = PipelineConfig::calibrated(&churny, MASTER_SEED);
    let mut age_table = Table::new(vec![
        "max_reuse_age_ms",
        "imu_fast_path",
        "accuracy",
        "mean_ms",
    ]);
    for age_ms in [250u64, 500, 1_000, 2_000, 4_000, 8_000] {
        let gate = ImuGate {
            max_reuse_age: SimDuration::from_millis(age_ms),
            ..ImuGate::default()
        };
        let config = calibrated.clone().with_gate(gate);
        let report = bench::summary_run(&churny, &config, SystemVariant::Full, MASTER_SEED);
        age_table.row(vec![
            age_ms.to_string(),
            fpct(report.path_fraction(ResolutionPath::ImuReuse)),
            fpct(report.accuracy),
            fnum(report.latency_ms.mean, 2),
        ]);
    }
    emit(
        "r7_imu_gate_age",
        "reuse-age bound under object churn",
        &age_table,
    );
}
