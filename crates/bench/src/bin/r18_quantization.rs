//! R-18 (extension) — quantization composes with caching: int8
//! quantization is the other standard answer to mobile inference cost.
//! This table shows the four combinations (fp32/int8 × no-cache/full) —
//! caching delivers a far larger latency cut than quantization, and the
//! two stack: the cached int8 system is the fastest configuration while
//! keeping accuracy above the uncached fp32 baseline.

use approxcache::prelude::*;
use bench::{emit, experiment_duration, MASTER_SEED};
use simcore::table::{fnum, fpct, Table};
use workloads::video;

fn main() {
    let scenario = video::turn_and_look().with_duration(experiment_duration());
    let base = PipelineConfig::calibrated(&scenario, MASTER_SEED);

    let mut table = Table::new(vec![
        "model",
        "system",
        "mean_ms",
        "accuracy",
        "energy_mJ",
        "vs_fp32_nocache",
    ]);
    let fp32 = dnnsim::zoo::mobilenet_v2();
    let int8 = fp32.quantized();
    let reference = bench::summary_run(
        &scenario,
        &base.clone().with_model(fp32.clone()),
        SystemVariant::NoCache,
        MASTER_SEED,
    );
    for model in [fp32, int8] {
        for variant in [SystemVariant::NoCache, SystemVariant::Full] {
            let config = base.clone().with_model(model.clone());
            let report = bench::summary_run(&scenario, &config, variant, MASTER_SEED);
            table.row(vec![
                model.name.to_string(),
                variant.to_string(),
                fnum(report.latency_ms.mean, 2),
                fpct(report.accuracy),
                fnum(report.mean_energy.value(), 1),
                fpct(report.latency_reduction_vs(&reference)),
            ]);
        }
    }
    emit(
        "r18_quantization",
        "int8 quantization x approximate caching (turn-and-look)",
        &table,
    );
}
