//! R-10 — ablation: the full system minus each mechanism, in the museum
//! (where all three mechanisms contribute). Shows what each mechanism is
//! worth and that no single one explains the result.

use approxcache::prelude::*;
use bench::{emit, experiment_duration, MASTER_SEED};
use simcore::table::{fnum, fpct, Table};
use workloads::multi;

fn main() {
    let scenario = multi::museum(8).with_duration(experiment_duration());
    let config = PipelineConfig::calibrated(&scenario, MASTER_SEED);
    let baseline = bench::summary_run(&scenario, &config, SystemVariant::NoCache, MASTER_SEED);

    let mut table = Table::new(vec![
        "variant",
        "mean_ms",
        "latency_reduction",
        "accuracy",
        "imu",
        "local",
        "peer",
        "dnn",
    ]);
    for variant in SystemVariant::ablation_set() {
        let report = bench::summary_run(&scenario, &config, variant, MASTER_SEED);
        table.row(vec![
            variant.to_string(),
            fnum(report.latency_ms.mean, 2),
            fpct(report.latency_reduction_vs(&baseline)),
            fpct(report.accuracy),
            fpct(report.path_fraction(ResolutionPath::ImuReuse)),
            fpct(report.path_fraction(ResolutionPath::LocalCache)),
            fpct(report.path_fraction(ResolutionPath::PeerCache)),
            fpct(report.path_fraction(ResolutionPath::FullInference)),
        ]);
    }
    emit(
        "r10_ablation",
        "mechanism ablation in the museum (vs no-cache baseline)",
        &table,
    );
    println!(
        "no-cache baseline: {:.2} ms mean, accuracy {}",
        baseline.latency_ms.mean,
        fpct(baseline.accuracy)
    );
}
