//! R-22 — the edge tier: the museum scenario run without peers (the
//! population a WAN cache actually serves) and with the full peer tier,
//! each bare and with the default edge configuration armed. The edge
//! counters in the last columns reconcile what the devices sent with
//! what the shared cache answered.
//!
//! A second table quantifies the fleet engine's one-round staleness:
//! `run_fleet` serves peer queries from frozen per-round cache views
//! while `sim::run` reads peers live, so the same museum scenario gives
//! the two engines different hit rates. (The engines also derive their
//! noise streams differently, so the gap includes stream noise; the
//! reuse-rate column is the headline.)

use std::num::NonZeroUsize;

use approxcache::prelude::*;
use approxcache::{run_fleet, EdgeConfig, FleetOptions};
use bench::{emit, experiment_duration, summary_run, MASTER_SEED};
use simcore::table::{fnum, fpct, Table};

fn main() {
    let duration = experiment_duration();
    let scenario = workloads::multi::museum(6).with_duration(duration);
    let base = PipelineConfig::calibrated(&scenario, MASTER_SEED);
    let mut assisted = base.clone();
    assisted.edge = Some(EdgeConfig::default());

    let mut edge_table = Table::new(vec![
        "system",
        "edge",
        "mean_ms",
        "accuracy",
        "reuse",
        "peer_hits",
        "edge_queries",
        "edge_adopted",
        "edge_inserts",
        "edge_gossip",
        "edge_timeouts",
    ]);

    for (system, variant) in [
        ("no-peer", SystemVariant::NoPeer),
        ("full", SystemVariant::Full),
    ] {
        for (armed, config) in [("off", &base), ("on", &assisted)] {
            let report = summary_run(&scenario, config, variant, MASTER_SEED);
            edge_table.row(vec![
                system.into(),
                armed.into(),
                fnum(report.latency_ms.mean, 2),
                fpct(report.accuracy),
                fpct(report.reuse_rate()),
                fpct(report.path_fraction(ResolutionPath::PeerCache)),
                report.edge.queries_sent.to_string(),
                report.edge.hits_adopted.to_string(),
                report.edge.inserts.to_string(),
                report.edge.gossip_entries.to_string(),
                report.edge.query_timeouts.to_string(),
            ]);
        }
    }
    emit(
        "r22_edge",
        "edge tier on/off, with and without the peer tier (museum x6)",
        &edge_table,
    );

    // Frozen-view staleness: the peer tier under live reads (sim::run)
    // vs one-round-stale frozen views (run_fleet). The edge tier stays
    // off — run_fleet rejects it by design.
    let mut staleness_table = Table::new(vec![
        "engine",
        "peer_reads",
        "mean_ms",
        "accuracy",
        "reuse",
        "peer_hits",
    ]);
    let live = summary_run(&scenario, &base, SystemVariant::Full, MASTER_SEED);
    let frozen = match run_fleet(
        &scenario,
        &base,
        SystemVariant::Full,
        MASTER_SEED,
        &FleetOptions::single()
            .with_threads(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)),
    ) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    };
    for (engine, reads, report) in [
        ("sim::run", "live", &live),
        ("run_fleet", "frozen/1-round", &frozen),
    ] {
        staleness_table.row(vec![
            engine.into(),
            reads.into(),
            fnum(report.latency_ms.mean, 2),
            fpct(report.accuracy),
            fpct(report.reuse_rate()),
            fpct(report.path_fraction(ResolutionPath::PeerCache)),
        ]);
    }
    emit(
        "r22_staleness",
        "live peer reads vs the fleet engine's frozen one-round views (museum x6)",
        &staleness_table,
    );
}
