//! Runs every macro experiment (R-1 .. R-22) and writes all CSVs under
//! `results/`, fanning the experiment binaries across one worker per
//! available core. Output is captured per experiment and printed in the
//! fixed submission order, so the transcript reads exactly as it would
//! sequentially — each binary writes its own CSV, so the files are
//! byte-identical too.
//!
//! ```sh
//! cargo run --release -p bench --bin run_all
//! EXPERIMENT_SECONDS=120 cargo run --release -p bench --bin run_all  # longer runs
//! ```

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::process::{Command, ExitCode};

use bench::parallel;

const EXPERIMENTS: [&str; 18] = [
    "r1_headline_latency",
    "r2_accuracy_threshold",
    "r3_hit_breakdown",
    "r4_latency_cdf",
    "r5_peer_scaling",
    "r6_eviction",
    "r7_imu_gate",
    "r8_energy",
    "r9_model_zoo",
    "r10_ablation",
    "r15_drift",
    "r16_discovery",
    "r17_adaptive",
    "r18_quantization",
    "r19_heterogeneous",
    "r20_cascade",
    "r21_resilience",
    "r22_edge",
];

const BUILD_REMEDY: &str =
    "build the sibling experiment binaries first: cargo build --release -p bench";

/// Everything that can sink the whole suite, each naming the binary at
/// fault and (where a rebuild helps) the remedy.
#[derive(Debug)]
enum RunAllError {
    /// The OS would not reveal where run_all itself lives, so sibling
    /// binaries cannot be located.
    NoCurrentExe(io::Error),
    /// Preflight found experiment binaries missing next to run_all.
    MissingBinaries(Vec<String>),
    /// A binary existed at preflight but failed to launch.
    Launch {
        name: &'static str,
        path: PathBuf,
        source: io::Error,
    },
    /// Experiments ran but exited nonzero.
    Failed(Vec<&'static str>),
}

impl fmt::Display for RunAllError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunAllError::NoCurrentExe(e) => {
                write!(f, "could not locate the run_all executable: {e}")
            }
            RunAllError::MissingBinaries(missing) => {
                write!(
                    f,
                    "missing experiment binaries: {}\n{BUILD_REMEDY}",
                    missing.join(", ")
                )
            }
            RunAllError::Launch { name, path, source } => {
                write!(
                    f,
                    "could not launch {name} ({}): {source}\n{BUILD_REMEDY}",
                    path.display()
                )
            }
            RunAllError::Failed(names) => write!(f, "failed experiments: {}", names.join(", ")),
        }
    }
}

fn run() -> Result<(), RunAllError> {
    let exe = std::env::current_exe().map_err(RunAllError::NoCurrentExe)?;
    let paths: Vec<PathBuf> = EXPERIMENTS
        .iter()
        .map(|name| exe.with_file_name(name))
        .collect();

    // Preflight: name every missing binary up front instead of failing
    // partway through a long suite.
    let missing: Vec<String> = EXPERIMENTS
        .iter()
        .zip(&paths)
        .filter(|(_, path)| !path.exists())
        .map(|(name, path)| format!("{name} ({})", path.display()))
        .collect();
    if !missing.is_empty() {
        return Err(RunAllError::MissingBinaries(missing));
    }

    // Each experiment is an independent process writing its own CSV;
    // capture stdout/stderr and replay them in submission order.
    let jobs: Vec<_> = EXPERIMENTS
        .iter()
        .zip(paths)
        .map(|(&name, path)| {
            move || {
                let output = Command::new(&path).output();
                (name, path, output)
            }
        })
        .collect();

    let mut failures = Vec::new();
    for (name, path, output) in parallel::run_jobs(jobs) {
        println!("\n########## {name} ##########");
        match output {
            Ok(out) => {
                print!("{}", String::from_utf8_lossy(&out.stdout));
                eprint!("{}", String::from_utf8_lossy(&out.stderr));
                if !out.status.success() {
                    eprintln!("{name} exited with {}", out.status);
                    failures.push(name);
                }
            }
            Err(source) => return Err(RunAllError::Launch { name, path, source }),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(RunAllError::Failed(failures))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("\nall experiments completed; CSVs are under results/");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("\n{e}");
            ExitCode::FAILURE
        }
    }
}
