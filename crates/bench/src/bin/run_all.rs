//! Runs every macro experiment (R-1 .. R-10) in sequence, writing all
//! CSVs under `results/`.
//!
//! ```sh
//! cargo run --release -p bench --bin run_all
//! EXPERIMENT_SECONDS=120 cargo run --release -p bench --bin run_all  # longer runs
//! ```

use std::process::Command;

fn main() {
    let experiments = [
        "r1_headline_latency",
        "r2_accuracy_threshold",
        "r3_hit_breakdown",
        "r4_latency_cdf",
        "r5_peer_scaling",
        "r6_eviction",
        "r7_imu_gate",
        "r8_energy",
        "r9_model_zoo",
        "r10_ablation",
        "r15_drift",
        "r16_discovery",
        "r17_adaptive",
        "r18_quantization",
        "r19_heterogeneous",
        "r20_cascade",
        "r21_resilience",
    ];
    let mut failures = Vec::new();
    for name in experiments {
        println!("\n########## {name} ##########");
        // Re-exec the sibling binary, which lives next to run_all.
        let path = std::env::current_exe()
            .expect("current exe")
            .with_file_name(name);
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!("could not launch {name} ({}): {e}", path.display());
                eprintln!("build all binaries first: cargo build --release -p bench");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; CSVs are under results/");
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
