//! R-3 — where reuse comes from: per-scenario breakdown of frames answered
//! by the IMU fast path, the local approximate cache, peers, and the DNN.

use approxcache::prelude::*;
use bench::{emit, experiment_duration, MASTER_SEED};
use simcore::table::{fpct, Table};
use workloads::{multi, video};

fn main() {
    let duration = experiment_duration();
    let mut scenarios = video::all();
    scenarios.push(multi::museum(8));
    let scenarios: Vec<_> = scenarios
        .into_iter()
        .map(|s| s.with_duration(duration))
        .collect();

    let mut table = Table::new(vec![
        "scenario",
        "devices",
        "imu_fast_path",
        "local_cache",
        "peer_cache",
        "full_inference",
        "reuse_total",
    ]);
    let mut latency_table = Table::new(vec![
        "scenario",
        "imu_ms",
        "local_ms",
        "peer_ms",
        "inference_ms",
    ]);
    for scenario in &scenarios {
        let config = PipelineConfig::calibrated(scenario, MASTER_SEED);
        let report = bench::summary_run(scenario, &config, SystemVariant::Full, MASTER_SEED);
        table.row(vec![
            scenario.name.clone(),
            scenario.devices.to_string(),
            fpct(report.path_fraction(ResolutionPath::ImuReuse)),
            fpct(report.path_fraction(ResolutionPath::LocalCache)),
            fpct(report.path_fraction(ResolutionPath::PeerCache)),
            fpct(report.path_fraction(ResolutionPath::FullInference)),
            fpct(report.reuse_rate()),
        ]);
        latency_table.row(vec![
            scenario.name.clone(),
            simcore::table::fnum(
                report.path_mean_latency(ResolutionPath::ImuReuse).value(),
                3,
            ),
            simcore::table::fnum(
                report.path_mean_latency(ResolutionPath::LocalCache).value(),
                3,
            ),
            simcore::table::fnum(
                report.path_mean_latency(ResolutionPath::PeerCache).value(),
                3,
            ),
            simcore::table::fnum(
                report
                    .path_mean_latency(ResolutionPath::FullInference)
                    .value(),
                2,
            ),
        ]);
    }
    emit(
        "r3_hit_breakdown",
        "reuse-source breakdown per scenario (full system)",
        &table,
    );
    emit(
        "r3_path_latency",
        "mean per-frame latency by answering path",
        &latency_table,
    );
}
