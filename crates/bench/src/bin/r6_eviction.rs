//! R-6 — cache capacity × eviction policy: hit rate and accuracy as the
//! cache shrinks, on a cyclic exhibit-ring stream with light churn (the
//! workload where victim choice matters most: LRU thrashes on cyclic
//! access below the working-set size, frequency-aware policies degrade
//! gracefully).

use approxcache::prelude::*;
use bench::{emit, experiment_duration, MASTER_SEED};
use reuse::{CacheConfig, EvictionPolicy};
use simcore::table::{fnum, fpct, Table};
use simcore::SimDuration;
use workloads::sweep;

fn main() {
    // Eviction only matters when the stream *revisits* subjects after the
    // working set exceeds capacity. A fast turn-and-look sweeps a ring of
    // exhibits over and over (cyclic access — the workload where victim
    // choice is famously decisive), and light churn adds staleness
    // pressure for TTL to exploit.
    let scenario = approxcache::Scenario::single_device(imu::MotionProfile::TurnAndLook {
        dwell_secs: 1.5,
        turn_deg: 90.0,
    })
    .with_name("exhibit-ring")
    .with_churn(ChurnSpec {
        interval: SimDuration::from_secs(15),
        fraction: 0.1,
    })
    .with_duration(experiment_duration() * 2);
    let calibrated = PipelineConfig::calibrated(&scenario, MASTER_SEED);
    let capacities = sweep::capacity_sweep(2, 64);

    let mut table = Table::new(vec![
        "capacity",
        "policy",
        "hit_rate",
        "reuse",
        "accuracy",
        "evictions",
        "mean_ms",
    ]);
    for &capacity in &capacities {
        for policy in EvictionPolicy::standard_set() {
            let cache = CacheConfig::new(capacity)
                .with_aknn(calibrated.cache.aknn)
                .with_admission(calibrated.cache.admission)
                .with_eviction(policy);
            let config = calibrated.clone().with_cache(cache);
            let report = bench::summary_run(&scenario, &config, SystemVariant::Full, MASTER_SEED);
            table.row(vec![
                capacity.to_string(),
                policy.to_string(),
                fpct(report.cache.hit_rate()),
                fpct(report.reuse_rate()),
                fpct(report.accuracy),
                report.cache.evictions.to_string(),
                fnum(report.latency_ms.mean, 2),
            ]);
        }
    }
    emit(
        "r6_eviction",
        "capacity x eviction policy under object churn",
        &table,
    );
}
