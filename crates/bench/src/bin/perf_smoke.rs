//! Hot-path perf smoke test: the recorded perf trajectory.
//!
//! Times the per-frame hot path (index lookup, insert, and the raw
//! distance kernel) at cache sizes 16/256/4096 — against the vendored
//! pre-optimisation reference path in the same binary — plus a
//! concurrent-throughput series over the sharded store and one
//! end-to-end experiment wall-clock, and appends the measurements as a
//! run entry to `BENCH.json` at the workspace root. Each run is also
//! mirrored as a per-run `BENCH_<n>.json` snapshot (see
//! [`bench::trajectory`]) — the form the trajectory readers consume —
//! and missing snapshots for older runs are backfilled. Purely
//! informational: the binary always exits 0, so CI never gates on
//! absolute times (they depend on the runner); the *trajectory* across
//! PRs is the signal. See EXPERIMENTS.md "Perf smoke".

use std::hint::black_box;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};

use ann::{build as build_index, IndexConfig, IndexScratch, NnIndex, ReferenceLinearScan};
use bench::perf::{best_of_ns, time_once_ms, time_per_op_ns};
use bench::{parallel, results_dir, trajectory, MASTER_SEED};
use features::distance::{squared_euclidean_flat, squared_euclidean_ref};
use features::FeatureVector;
use reuse::{AdmissionPolicy, CacheConfig, ConcurrentConfig, EntrySource, SharedCache};
use serde::Serialize;
use simcore::{SimDuration, SimRng, SimTime};

/// Key dimension the pipeline uses (`PipelineConfig::key_dim`).
const DIM: usize = 64;
/// Neighbours per lookup (`AknnConfig::default().k`).
const K: usize = 4;
/// Cache sizes the hot path is profiled at.
const SIZES: [usize; 3] = [16, 256, 4096];
/// Cache sizes the recall/latency frontier is charted at — the last one
/// is fleet scale, where the O(n) scan loses to the graph index.
const FRONTIER_SIZES: [usize; 3] = [256, 4096, 65_536];
/// Measurement rounds per point; the fastest round is kept.
const ROUNDS: u32 = 3;
/// Simulated seconds of the end-to-end run.
const E2E_SECONDS: u64 = 5;
/// Entries per label cluster in the synthetic cache content. The reuse
/// cache holds several near-duplicate keys per recognized item (that is
/// the A-kNN homogeneity premise), so the benchmark population is
/// clustered, not uniform — which is also what makes the scan's
/// early-exit bound representative.
const CLUSTER_SIZE: usize = 8;
/// Within-cluster per-component noise.
const CLUSTER_SIGMA: f64 = 0.05;
/// Entries pre-populated into each concurrent-throughput cache.
const CONCURRENT_ENTRIES: usize = 4096;
/// Worker threads driving the concurrent series.
const CONCURRENT_THREADS: usize = 4;
/// Shard count of the sharded point (vs the 1-shard single-lock
/// baseline).
const CONCURRENT_SHARDS: usize = 4;
/// Lookups per worker per concurrent measurement round.
const CONCURRENT_LOOKUPS: usize = 1024;
/// Re-inserts per worker per concurrent measurement round.
const CONCURRENT_INSERTS: usize = 256;
/// Devices in the fleet-throughput series (override with the
/// `FLEET_DEVICES` environment variable).
const FLEET_DEVICES: usize = 10_000;
/// Simulated seconds of each fleet-throughput run.
const FLEET_SECONDS: u64 = 1;
/// Shards the fleet population is partitioned into. The report is
/// shard-count invariant; shards only bound available parallelism.
const FLEET_SHARDS: usize = 8;
/// Spawn spacing of the fleet scenario, metres. Wider than the default
/// so a 10k-device population has single-digit neighbour counts (the
/// default 4 m grid would put ~170 devices inside WiFi-Direct range).
const FLEET_SPACING_M: f64 = 20.0;
/// Frames per batch the edge codec + cache series is profiled at.
const EDGE_BATCHES: [usize; 3] = [1, 16, 256];

/// One cache-size measurement point.
#[derive(Debug, Serialize)]
struct SizePoint {
    size: usize,
    /// ns per `LinearScan::nearest_into` (flat buffer, reused scratch).
    lookup_ns: f64,
    /// ns per `ReferenceLinearScan::nearest` (pre-change path).
    lookup_reference_ns: f64,
    /// `lookup_reference_ns / lookup_ns`.
    lookup_speedup: f64,
    /// Amortized ns per insert when filling the index from empty.
    insert_ns: f64,
}

/// One point of the recall-vs-latency frontier: an index family at a
/// cache size, with its steady-state lookup cost and its recall@`K`
/// against the `ReferenceLinearScan` oracle on the same clustered keys.
#[derive(Debug, Serialize)]
struct FrontierPoint {
    /// Index family (`"linear"`, `"kdtree"`, `"lsh"`, `"nsw"`).
    index: String,
    size: usize,
    /// ns per `nearest_into` with a reused scratch.
    lookup_ns: f64,
    /// Fraction of the oracle's top-`K` ids the index returns,
    /// averaged over the query set (exact indexes score 1.0 by
    /// construction).
    recall_at_k: f64,
}

/// One point of the concurrent-throughput series: a shard count and the
/// aggregate operation rate `CONCURRENT_THREADS` workers sustain on it.
#[derive(Debug, Serialize)]
struct ConcurrentPoint {
    shards: usize,
    threads: usize,
    /// Aggregate lookup+insert operations per wall millisecond.
    ops_per_ms: f64,
}

/// One point of the fleet-throughput series: device-frames per wall
/// second that `workers` pool threads sustain on the sharded fleet
/// engine.
#[derive(Debug, Serialize)]
struct FleetPoint {
    workers: usize,
    shards: usize,
    devices: usize,
    /// Device-frames simulated per wall second.
    frames_per_sec: f64,
}

/// One point of the edge series: the wire codec's throughput on a
/// mixed lookup/insert/gossip batch of `frames` operations, and the
/// batched apply rate of the in-process `EdgeCache` the server half
/// serves from.
#[derive(Debug, Serialize)]
struct EdgePoint {
    frames: usize,
    /// Encoded request size in bytes.
    request_bytes: usize,
    /// `BatchRequest::encode` throughput.
    encode_mb_per_sec: f64,
    /// `BatchRequest::decode` throughput.
    decode_mb_per_sec: f64,
    /// Frames applied per wall millisecond through
    /// `EdgeCache::apply_batch`.
    apply_frames_per_ms: f64,
}

/// One `BENCH.json` run entry.
#[derive(Debug, Serialize)]
struct BenchRun {
    label: String,
    dim: usize,
    k: usize,
    threads: usize,
    sizes: Vec<SizePoint>,
    /// The recall/latency frontier: every index family at every
    /// `FRONTIER_SIZES` entry count.
    frontier: Vec<FrontierPoint>,
    /// ns per chunked flat-kernel distance at `dim`.
    distance_flat_ns: f64,
    /// ns per reference scalar-kernel distance at `dim`.
    distance_reference_ns: f64,
    /// Sharded-store throughput at 1 shard (single-lock baseline) and at
    /// `CONCURRENT_SHARDS`.
    concurrent: Vec<ConcurrentPoint>,
    /// `ops_per_ms` at `CONCURRENT_SHARDS` over the 1-shard baseline.
    concurrent_speedup: f64,
    /// Fleet throughput at 1 worker and at `default_threads()` workers
    /// (plus a 2-worker point when `default_threads()` is 1, so the
    /// parallel path is always exercised).
    fleet: Vec<FleetPoint>,
    /// `frames_per_sec` at `default_threads()` workers over the
    /// 1-worker baseline.
    fleet_speedup: f64,
    /// The edge tier: codec MB/s and batched `EdgeCache` apply rates at
    /// every `EDGE_BATCHES` batch size.
    edge: Vec<EdgePoint>,
    e2e_scenario: String,
    e2e_seconds: u64,
    e2e_wall_ms: f64,
}

fn random_key(rng: &mut SimRng) -> FeatureVector {
    let components: Vec<f32> = (0..DIM).map(|_| rng.uniform(-1.0, 1.0) as f32).collect();
    match FeatureVector::from_vec(components) {
        Ok(key) => key,
        Err(e) => unreachable!("uniform components are finite: {e}"),
    }
}

fn near(center: &[f32], rng: &mut SimRng) -> FeatureVector {
    let components: Vec<f32> = center
        .iter()
        .map(|&c| c + rng.normal(0.0, CLUSTER_SIGMA) as f32)
        .collect();
    match FeatureVector::from_vec(components) {
        Ok(key) => key,
        Err(e) => unreachable!("perturbed components are finite: {e}"),
    }
}

/// Synthetic cache content: `size / CLUSTER_SIZE` label clusters, each a
/// center with near-duplicate members, plus queries that land near a
/// random center (a frame of something the cache has seen).
fn keys_and_queries(size: usize, rng: &mut SimRng) -> (Vec<FeatureVector>, Vec<FeatureVector>) {
    let clusters = (size / CLUSTER_SIZE).max(1);
    let centers: Vec<FeatureVector> = (0..clusters).map(|_| random_key(rng)).collect();
    let keys = (0..size)
        .map(|i| near(centers[i % clusters].as_slice(), rng))
        .collect();
    let queries = (0..64)
        .map(|_| {
            let center = &centers[rng.index(clusters)];
            near(center.as_slice(), rng)
        })
        .collect();
    (keys, queries)
}

/// Iterations per measurement round, scaled so every size lands in the
/// tens-of-milliseconds regime.
fn lookup_iters(size: usize) -> u64 {
    match size {
        0..=31 => 20_000,
        32..=1023 => 4_000,
        _ => 400,
    }
}

fn measure_size(size: usize, rng: &mut SimRng) -> SizePoint {
    let (keys, queries) = keys_and_queries(size, rng);

    let mut fast = build_index(DIM, &IndexConfig::Linear);
    let mut reference = ReferenceLinearScan::new(DIM);
    for (id, key) in keys.iter().enumerate() {
        fast.insert(id as u64, key.clone());
        reference.insert(id as u64, key.clone());
    }

    let iters = lookup_iters(size);
    let mut scratch = IndexScratch::new();
    let mut out = Vec::new();
    let mut qi = 0usize;
    let lookup_ns = best_of_ns(ROUNDS, || {
        time_per_op_ns(iters, || {
            let query = &queries[qi % queries.len()];
            qi = qi.wrapping_add(1);
            fast.nearest_into(query, K, &mut scratch, &mut out);
            black_box(out.last());
        })
    });
    let lookup_reference_ns = best_of_ns(ROUNDS, || {
        time_per_op_ns(iters, || {
            let query = &queries[qi % queries.len()];
            qi = qi.wrapping_add(1);
            black_box(reference.nearest(query, K));
        })
    });

    let insert_ns = best_of_ns(ROUNDS, || {
        let mut fresh = build_index(DIM, &IndexConfig::Linear);
        let ms = time_once_ms(|| {
            for (id, key) in keys.iter().enumerate() {
                fresh.insert(id as u64, key.clone());
            }
            black_box(fresh.len());
        });
        ms * 1e6 / size as f64
    });

    SizePoint {
        size,
        lookup_ns,
        lookup_reference_ns,
        lookup_speedup: lookup_reference_ns / lookup_ns,
        insert_ns,
    }
}

/// Iterations per frontier measurement round — lighter than the size
/// series because the 65k point is ~1 ms per scan lookup.
fn frontier_iters(size: usize) -> u64 {
    match size {
        0..=1023 => 4_000,
        1024..=16_383 => 400,
        _ => 100,
    }
}

/// Charts the recall/latency frontier: every index family × every
/// `FRONTIER_SIZES` entry count, recall measured against the
/// `ReferenceLinearScan` oracle on the same clustered population.
fn measure_frontier(rng: &mut SimRng) -> Vec<FrontierPoint> {
    // NSW runs a wider beam than the library default: at the 65 536-entry
    // point the default ef=48 trades too much recall on uniform 64-dim
    // keys (distance concentration), while a 256-wide beam holds
    // recall@4 well above 0.95 and still undercuts the linear scan by an
    // order of magnitude — this is the operating point a deployment
    // migrating off LinearScan would actually pick.
    let configs: [(&str, IndexConfig); 4] = [
        ("linear", IndexConfig::Linear),
        ("kdtree", IndexConfig::KdTree),
        ("lsh", IndexConfig::Lsh(ann::LshConfig::default())),
        ("nsw", IndexConfig::Nsw(ann::NswConfig { m: 16, ef: 256 })),
    ];
    let mut points = Vec::new();
    for size in FRONTIER_SIZES {
        let (keys, queries) = keys_and_queries(size, rng);
        let mut oracle = ReferenceLinearScan::new(DIM);
        for (id, key) in keys.iter().enumerate() {
            oracle.insert(id as u64, key.clone());
        }
        let truth: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| oracle.nearest(q, K).into_iter().map(|n| n.id).collect())
            .collect();
        for (name, config) in &configs {
            let mut index = build_index(DIM, config);
            for (id, key) in keys.iter().enumerate() {
                index.insert(id as u64, key.clone());
            }
            let mut scratch = IndexScratch::new();
            let mut out = Vec::new();
            let mut found = 0usize;
            let mut total = 0usize;
            for (q, t) in queries.iter().zip(&truth) {
                index.nearest_into(q, K, &mut scratch, &mut out);
                total += t.len();
                found += t
                    .iter()
                    .filter(|id| out.iter().any(|n| n.id == **id))
                    .count();
            }
            let recall_at_k = if total == 0 {
                1.0
            } else {
                found as f64 / total as f64
            };
            let iters = frontier_iters(size);
            let mut qi = 0usize;
            let lookup_ns = best_of_ns(ROUNDS, || {
                time_per_op_ns(iters, || {
                    let query = &queries[qi % queries.len()];
                    qi = qi.wrapping_add(1);
                    index.nearest_into(query, K, &mut scratch, &mut out);
                    black_box(out.last());
                })
            });
            points.push(FrontierPoint {
                index: (*name).to_owned(),
                size,
                lookup_ns,
                recall_at_k,
            });
        }
    }
    points
}

fn measure_distance_kernels(rng: &mut SimRng) -> (f64, f64) {
    let a = random_key(rng);
    let b = random_key(rng);
    let (a, b) = (a.as_slice(), b.as_slice());
    let flat = best_of_ns(ROUNDS, || {
        time_per_op_ns(1_000_000, || {
            black_box(squared_euclidean_flat(black_box(a), black_box(b)));
        })
    });
    let reference = best_of_ns(ROUNDS, || {
        time_per_op_ns(1_000_000, || {
            black_box(squared_euclidean_ref(black_box(a), black_box(b)));
        })
    });
    (flat, reference)
}

/// Aggregate lookup+insert throughput of the shared store at `shards`
/// shards under `CONCURRENT_THREADS` workers. The caches are
/// pre-populated with the same `CONCURRENT_ENTRIES` random keys, so the
/// 1-shard point is the old single-lock store and the sharded point
/// shows what bucket routing buys: each worker's lookups probe a
/// `~1/shards`-size index and writers on different buckets never
/// contend.
fn measure_concurrent(shards: usize, rng: &mut SimRng) -> ConcurrentPoint {
    let cache: SharedCache<u32> = SharedCache::with_concurrency(
        ConcurrentConfig::new(
            CacheConfig::new(CONCURRENT_ENTRIES * 2).with_admission(AdmissionPolicy::admit_all()),
        )
        .with_shards(shards),
    );
    let keys: Vec<FeatureVector> = (0..CONCURRENT_ENTRIES).map(|_| random_key(rng)).collect();
    for (i, key) in keys.iter().enumerate() {
        cache.insert(
            key.clone(),
            (i % 64) as u32,
            0.9,
            EntrySource::LocalInference,
            SimTime::from_millis(i as u64),
        );
    }

    let threads = NonZeroUsize::new(CONCURRENT_THREADS).unwrap_or(NonZeroUsize::MIN);
    let mut wall_ms = f64::INFINITY;
    for _ in 0..ROUNDS {
        let jobs: Vec<_> = (0..CONCURRENT_THREADS)
            .map(|w| {
                let cache = cache.clone();
                let keys = keys.clone();
                move || {
                    let stride = w * keys.len() / CONCURRENT_THREADS;
                    for i in 0..CONCURRENT_LOOKUPS {
                        let key = &keys[(stride + i) % keys.len()];
                        black_box(cache.lookup(key, SimTime::from_secs(60)));
                    }
                    // Re-inserts refresh existing entries, so the cache
                    // stays the same size across rounds.
                    for i in 0..CONCURRENT_INSERTS {
                        let key = keys[(stride + i * CONCURRENT_THREADS) % keys.len()].clone();
                        cache.insert(
                            key,
                            w as u32,
                            0.9,
                            EntrySource::LocalInference,
                            SimTime::from_secs(61),
                        );
                    }
                }
            })
            .collect();
        let ms = time_once_ms(|| {
            black_box(parallel::run_jobs_on(threads, jobs));
        });
        wall_ms = wall_ms.min(ms);
    }

    let total_ops = (CONCURRENT_THREADS * (CONCURRENT_LOOKUPS + CONCURRENT_INSERTS)) as f64;
    ConcurrentPoint {
        shards,
        threads: CONCURRENT_THREADS,
        ops_per_ms: total_ops / wall_ms,
    }
}

/// The edge tier at one batch size: codec throughput on a mixed
/// lookup/insert/gossip request, and the apply rate of the shared
/// `EdgeCache` behind it (the same call the HTTP server makes per
/// request, minus the socket).
fn measure_edge(frames: usize, rng: &mut SimRng) -> EdgePoint {
    let request = edge::BatchRequest {
        device: 7,
        frames: (0..frames)
            .map(|i| {
                let key = random_key(rng);
                match i % 3 {
                    0 => edge::Frame::Insert {
                        key,
                        label: (i % 64) as u32,
                        confidence: 0.9,
                    },
                    1 => edge::Frame::Lookup { key },
                    _ => edge::Frame::GossipAd {
                        key,
                        label: (i % 64) as u32,
                        confidence: 0.9,
                    },
                }
            })
            .collect(),
    };
    let encoded = request.encode();
    let request_bytes = encoded.len();

    let iters = (8_000 / frames.max(1)).max(16) as u64;
    let encode_ns = best_of_ns(ROUNDS, || {
        time_per_op_ns(iters, || {
            black_box(request.encode());
        })
    });
    let decode_ns = best_of_ns(ROUNDS, || {
        time_per_op_ns(iters, || {
            black_box(edge::BatchRequest::decode(&encoded)).ok();
        })
    });

    let cache = match edge::EdgeCache::new(edge::EdgeCacheConfig {
        capacity: 8_192,
        distance_threshold: 1.0,
        queue_limit: frames.max(1_024),
    }) {
        Ok(cache) => cache,
        Err(e) => unreachable!("hand-written edge config: {e}"),
    };
    let apply_iters = (2_000 / frames.max(1)).max(8) as u64;
    let mut tick = 0u64;
    let apply_ns = best_of_ns(ROUNDS, || {
        time_per_op_ns(apply_iters, || {
            tick += 1;
            black_box(cache.apply_batch(&request, SimTime::from_millis(tick)).ok());
        })
    });

    // bytes/ns × 1e3 = MB/s (1e9 ns/s over 1e6 bytes/MB).
    let mb_per_sec = |ns: f64| request_bytes as f64 * 1e3 / ns.max(1e-9);
    EdgePoint {
        frames,
        request_bytes,
        encode_mb_per_sec: mb_per_sec(encode_ns),
        decode_mb_per_sec: mb_per_sec(decode_ns),
        apply_frames_per_ms: frames as f64 * 1e6 / apply_ns.max(1e-9),
    }
}

fn bench_json_path() -> PathBuf {
    results_dir()
        .parent()
        .map(|workspace| workspace.join("BENCH.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH.json"))
}

/// Devices in the fleet series, after the `FLEET_DEVICES` override.
fn fleet_devices() -> usize {
    std::env::var("FLEET_DEVICES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(FLEET_DEVICES)
        .max(2)
}

/// One fleet-throughput measurement: a full sharded fleet run on
/// `workers` pool threads, reported as device-frames per wall second.
fn measure_fleet(workers: NonZeroUsize, devices: usize) -> FleetPoint {
    let mut scenario = approxcache::Scenario::multi_device(
        imu::MotionProfile::SlowPan { deg_per_sec: 20.0 },
        devices,
    )
    .with_duration(SimDuration::from_secs(FLEET_SECONDS));
    scenario.spawn_spacing = FLEET_SPACING_M;
    let config = approxcache::PipelineConfig::calibrated(&scenario, MASTER_SEED);
    let options = approxcache::FleetOptions {
        shards: FLEET_SHARDS,
        threads: workers,
    };
    let mut frames = 0usize;
    let wall_ms = time_once_ms(|| {
        match approxcache::run_fleet(
            &scenario,
            &config,
            approxcache::SystemVariant::Full,
            MASTER_SEED,
            &options,
        ) {
            Ok(report) => frames = report.frames,
            Err(e) => unreachable!("fleet scenario is hand-written: {e}"),
        }
    });
    FleetPoint {
        workers: workers.get(),
        shards: FLEET_SHARDS,
        devices,
        frames_per_sec: frames as f64 / (wall_ms / 1e3).max(1e-9),
    }
}

fn append_run(run: &BenchRun) -> Result<(PathBuf, serde_json::Value), String> {
    let path = bench_json_path();
    let mut doc: serde_json::Value = match std::fs::read_to_string(&path) {
        Ok(text) => serde_json::from_str(&text)
            .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?,
        Err(_) => serde_json::from_str(r#"{"schema": 1, "runs": []}"#)
            .map_err(|e| format!("empty document: {e}"))?,
    };
    let entry = serde_json::to_value(run).map_err(|e| format!("serialize run: {e}"))?;
    match doc["runs"].as_array_mut() {
        Some(runs) => runs.push(entry),
        None => return Err(format!("{}: no \"runs\" array", path.display())),
    }
    let text =
        serde_json::to_string_pretty(&doc).map_err(|e| format!("serialize document: {e}"))?;
    std::fs::write(&path, text + "\n").map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok((path, doc))
}

/// Mirrors the cumulative document into per-run `BENCH_<n>.json`
/// snapshots (filling any gaps from runs recorded before the snapshot
/// scheme existed) and prints the trajectory those snapshots encode.
fn record_and_print_trajectory(dir: &Path, doc: &serde_json::Value) {
    match trajectory::backfill(dir, doc) {
        Ok(written) => {
            for n in written {
                println!(
                    "wrote snapshot {}",
                    trajectory::snapshot_path(dir, n).display()
                );
            }
        }
        Err(e) => eprintln!("warning: could not write run snapshots: {e}"),
    }
    let points = match trajectory::read(dir) {
        Ok(points) => points,
        Err(e) => {
            eprintln!("warning: could not read trajectory: {e}");
            return;
        }
    };
    if points.is_empty() {
        println!("\nperf trajectory: empty (no BENCH_<n>.json snapshots)");
        return;
    }
    let ratio = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |x| format!("{x:.2}x"));
    println!("\n== perf trajectory ({} runs) ==", points.len());
    println!(
        "{:>4}  {:<20} {:>12} {:>11} {:>8} {:>10} {:>10} {:>8}",
        "run", "label", "4096 lookup", "concurrent", "e2e ms", "nsw 65536", "nsw recall", "fleet"
    );
    for p in points {
        println!(
            "{:>4}  {:<20} {:>12} {:>11} {:>8} {:>10} {:>10} {:>8}",
            p.run,
            p.label,
            ratio(p.lookup_speedup_at_4096),
            ratio(p.concurrent_speedup),
            p.e2e_wall_ms
                .map_or_else(|| "-".to_owned(), |x| format!("{x:.1}")),
            ratio(p.nsw_speedup_at_65536),
            p.nsw_recall_at_65536
                .map_or_else(|| "-".to_owned(), |x| format!("{x:.3}")),
            ratio(p.fleet_speedup),
        );
    }
}

fn main() {
    println!("== perf_smoke: hot-path timings (informational — never gates CI) ==\n");
    let mut rng = SimRng::seed(MASTER_SEED).split("perf-smoke");

    let mut sizes = Vec::new();
    println!(
        "{:>6}  {:>12} {:>12} {:>8} {:>10}",
        "size", "lookup ns", "ref ns", "speedup", "insert ns"
    );
    for size in SIZES {
        let point = measure_size(size, &mut rng);
        println!(
            "{:>6}  {:>12.1} {:>12.1} {:>7.2}x {:>10.1}",
            point.size,
            point.lookup_ns,
            point.lookup_reference_ns,
            point.lookup_speedup,
            point.insert_ns
        );
        sizes.push(point);
    }

    println!("\nrecall/latency frontier (k = {K}, recall vs exact oracle):");
    println!(
        "{:>8} {:>8} {:>12} {:>9}",
        "index", "size", "lookup ns", "recall@k"
    );
    let frontier = measure_frontier(&mut rng);
    for p in &frontier {
        println!(
            "{:>8} {:>8} {:>12.1} {:>9.3}",
            p.index, p.size, p.lookup_ns, p.recall_at_k
        );
    }

    let (distance_flat_ns, distance_reference_ns) = measure_distance_kernels(&mut rng);
    println!(
        "\ndistance kernel (dim {DIM}): flat {distance_flat_ns:.2} ns, reference {distance_reference_ns:.2} ns"
    );

    println!(
        "\nconcurrent store ({CONCURRENT_ENTRIES} entries, {CONCURRENT_THREADS} threads, \
         lookups+inserts):"
    );
    let single_lock = measure_concurrent(1, &mut rng);
    let sharded = measure_concurrent(CONCURRENT_SHARDS, &mut rng);
    let concurrent_speedup = sharded.ops_per_ms / single_lock.ops_per_ms;
    for point in [&single_lock, &sharded] {
        println!(
            "  {:>2} shard(s): {:>10.1} ops/ms",
            point.shards, point.ops_per_ms
        );
    }
    println!("  aggregate speedup at {CONCURRENT_SHARDS} shards: {concurrent_speedup:.2}x");

    let devices = fleet_devices();
    println!(
        "\nfleet throughput ({devices} devices, {FLEET_SHARDS} shards, {FLEET_SECONDS}s simulated):"
    );
    let default_workers = parallel::default_threads();
    let fleet_single = measure_fleet(NonZeroUsize::MIN, devices);
    let fleet_default = if default_workers.get() > 1 {
        measure_fleet(default_workers, devices)
    } else {
        // One-core runner: the default-workers point IS the 1-worker
        // point; measure 2 workers anyway so the parallel path runs.
        measure_fleet(NonZeroUsize::new(2).unwrap_or(NonZeroUsize::MIN), devices)
    };
    let fleet_speedup = if default_workers.get() > 1 {
        fleet_default.frames_per_sec / fleet_single.frames_per_sec.max(1e-9)
    } else {
        1.0
    };
    for point in [&fleet_single, &fleet_default] {
        println!(
            "  {:>2} worker(s): {:>10.0} frames/sec",
            point.workers, point.frames_per_sec
        );
    }
    println!(
        "  fleet speedup at {} worker(s): {fleet_speedup:.2}x",
        default_workers.get()
    );

    println!("\nedge tier (mixed lookup/insert/gossip batches):");
    println!(
        "{:>7} {:>9} {:>12} {:>12} {:>13}",
        "frames", "bytes", "enc MB/s", "dec MB/s", "apply fr/ms"
    );
    let edge_points: Vec<EdgePoint> = EDGE_BATCHES
        .iter()
        .map(|&frames| {
            let point = measure_edge(frames, &mut rng);
            println!(
                "{:>7} {:>9} {:>12.1} {:>12.1} {:>13.1}",
                point.frames,
                point.request_bytes,
                point.encode_mb_per_sec,
                point.decode_mb_per_sec,
                point.apply_frames_per_ms
            );
            point
        })
        .collect();

    let scenario =
        workloads::video::stationary().with_duration(SimDuration::from_secs(E2E_SECONDS));
    let config = approxcache::PipelineConfig::calibrated(&scenario, MASTER_SEED);
    let e2e_wall_ms = time_once_ms(|| {
        black_box(bench::summary_run(
            &scenario,
            &config,
            approxcache::SystemVariant::Full,
            MASTER_SEED,
        ));
    });
    println!(
        "e2e: {} x {E2E_SECONDS}s (Full) in {e2e_wall_ms:.1} ms wall",
        scenario.name
    );

    let run = BenchRun {
        label: std::env::var("BENCH_LABEL").unwrap_or_else(|_| "dev".to_owned()),
        dim: DIM,
        k: K,
        threads: parallel::default_threads().get(),
        sizes,
        frontier,
        distance_flat_ns,
        distance_reference_ns,
        concurrent: vec![single_lock, sharded],
        concurrent_speedup,
        fleet: vec![fleet_single, fleet_default],
        fleet_speedup,
        edge: edge_points,
        e2e_scenario: scenario.name.clone(),
        e2e_seconds: E2E_SECONDS,
        e2e_wall_ms,
    };

    if let Some(big) = run.sizes.iter().find(|p| p.size == 4096) {
        if big.lookup_speedup < 2.0 {
            println!(
                "\nnote: lookup speedup at 4096 is {:.2}x (< 2x — expected only in \
                 unoptimized or heavily loaded builds)",
                big.lookup_speedup
            );
        }
    }
    if run.concurrent_speedup < 2.0 {
        println!(
            "\nnote: concurrent speedup at {CONCURRENT_SHARDS} shards is {:.2}x (< 2x — \
             expected only on heavily loaded runners; the win comes from per-shard \
             indexes being ~{CONCURRENT_SHARDS}x smaller, not from parallelism)",
            run.concurrent_speedup
        );
    }
    if run.fleet_speedup < 2.5 {
        println!(
            "\nnote: fleet speedup at {} worker(s) is {:.2}x (< 2.5x — expected on \
             runners with few cores: the fleet engine's parallel phases scale with \
             physical cores, and a 1-core runner has nothing to parallelize onto)",
            run.threads, run.fleet_speedup
        );
    }

    match append_run(&run) {
        Ok((path, doc)) => {
            println!("\nappended run to {}", path.display());
            let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
            record_and_print_trajectory(&dir, &doc);
        }
        Err(e) => eprintln!("\nwarning: could not record run: {e}"),
    }
}
