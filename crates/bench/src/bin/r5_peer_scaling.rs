//! R-5 — the value of neighbours: hit rate, latency and network cost as
//! the number of co-located devices grows in the museum scenario.

use approxcache::prelude::*;
use bench::{emit, experiment_duration, MASTER_SEED};
use simcore::table::{fnum, fpct, Table};
use workloads::multi;

fn main() {
    let duration = experiment_duration();
    let counts = [1usize, 2, 4, 8, 16];
    let mut table = Table::new(vec![
        "devices",
        "peer_hits",
        "reuse",
        "mean_ms",
        "accuracy",
        "net_kB_per_device",
        "msgs_per_device",
    ]);
    for &count in &counts {
        let scenario = multi::museum(count).with_duration(duration);
        let config = PipelineConfig::calibrated(&scenario, MASTER_SEED);
        let report = bench::summary_run(&scenario, &config, SystemVariant::Full, MASTER_SEED);
        table.row(vec![
            count.to_string(),
            fpct(report.path_fraction(ResolutionPath::PeerCache)),
            fpct(report.reuse_rate()),
            fnum(report.latency_ms.mean, 2),
            fpct(report.accuracy),
            fnum(report.network.bytes_sent as f64 / 1e3 / count as f64, 1),
            fnum(report.network.messages_sent as f64 / count as f64, 0),
        ]);
    }
    emit(
        "r5_peer_scaling",
        "effect of peer count (museum, full system)",
        &table,
    );
}
