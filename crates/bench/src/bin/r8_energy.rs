//! R-8 — energy per frame: NoCache vs Full across the model zoo on a
//! slow pan. Inference power dominates, so energy savings track latency
//! savings minus the (small) radio cost of collaboration.

use approxcache::prelude::*;
use bench::{emit, experiment_duration, MASTER_SEED};
use simcore::table::{fnum, fpct, Table};
use workloads::video;

fn main() {
    let scenario = video::slow_pan().with_duration(experiment_duration());
    let base_config = PipelineConfig::calibrated(&scenario, MASTER_SEED);

    // A typical 4000 mAh / 3.85 V phone battery.
    const BATTERY_MWH: f64 = 15_400.0;

    let mut table = Table::new(vec![
        "model",
        "no_cache_mJ",
        "full_mJ",
        "energy_reduction",
        "no_cache_batt_pct_h",
        "full_batt_pct_h",
    ]);
    for model in dnnsim::zoo::all() {
        let config = base_config.clone().with_model(model.clone());
        let base = bench::summary_run(&scenario, &config, SystemVariant::NoCache, MASTER_SEED);
        let full = bench::summary_run(&scenario, &config, SystemVariant::Full, MASTER_SEED);
        let reduction = 1.0 - full.mean_energy / base.mean_energy;
        table.row(vec![
            model.name.to_string(),
            fnum(base.mean_energy.value(), 1),
            fnum(full.mean_energy.value(), 1),
            fpct(reduction),
            fnum(base.battery_pct_per_hour(BATTERY_MWH), 1),
            fnum(full.battery_pct_per_hour(BATTERY_MWH), 1),
        ]);
    }
    emit(
        "r8_energy",
        "per-frame energy across the model zoo (slow pan)",
        &table,
    );
}
