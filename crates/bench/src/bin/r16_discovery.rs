//! R-16 (extension) — what oracle-free discovery costs: the museum
//! scenario with the simulator's proximity oracle vs beacon-based
//! neighbour discovery at several beacon rates. Slower beacons delay peer
//! visibility (fewer peer hits) but cost less radio.

use approxcache::prelude::*;
use bench::{emit, experiment_duration, MASTER_SEED};
use p2pnet::DiscoveryConfig;
use simcore::table::{fnum, fpct, Table};
use simcore::SimDuration;
use workloads::multi;

fn main() {
    let scenario = multi::museum(8).with_duration(experiment_duration());
    let base = PipelineConfig::calibrated(&scenario, MASTER_SEED);

    let mut table = Table::new(vec![
        "neighbor_source",
        "beacon_ms",
        "peer_hits",
        "reuse",
        "mean_ms",
        "net_kB_total",
        "msgs_total",
    ]);

    let oracle = bench::summary_run(&scenario, &base, SystemVariant::Full, MASTER_SEED);
    table.row(vec![
        "oracle".into(),
        "-".into(),
        fpct(oracle.path_fraction(ResolutionPath::PeerCache)),
        fpct(oracle.reuse_rate()),
        fnum(oracle.latency_ms.mean, 2),
        fnum(oracle.network.bytes_sent as f64 / 1e3, 1),
        oracle.network.messages_sent.to_string(),
    ]);

    for beacon_ms in [250u64, 500, 1_000, 2_000] {
        let mut config = base.clone();
        config.peer.as_mut().expect("peers enabled").discovery = Some(DiscoveryConfig {
            beacon_interval: SimDuration::from_millis(beacon_ms),
            neighbor_ttl: SimDuration::from_millis(beacon_ms * 3 + 100),
            ..DiscoveryConfig::default()
        });
        let report = bench::summary_run(&scenario, &config, SystemVariant::Full, MASTER_SEED);
        table.row(vec![
            "beacons".into(),
            beacon_ms.to_string(),
            fpct(report.path_fraction(ResolutionPath::PeerCache)),
            fpct(report.reuse_rate()),
            fnum(report.latency_ms.mean, 2),
            fnum(report.network.bytes_sent as f64 / 1e3, 1),
            report.network.messages_sent.to_string(),
        ]);
    }
    emit(
        "r16_discovery",
        "oracle proximity vs beacon discovery (museum x8)",
        &table,
    );
}
