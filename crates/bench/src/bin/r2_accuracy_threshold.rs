//! R-2 — the accuracy/threshold trade-off behind "minimal loss of
//! recognition accuracy": sweep the A-kNN distance threshold around the
//! calibrated value on a slow pan, reporting hit rate, reuse, accuracy
//! and the accuracy delta vs always-infer.

use ann::AknnConfig;
use approxcache::prelude::*;
use bench::{emit, experiment_duration, MASTER_SEED};
use simcore::table::{fnum, fpct, Table};
use workloads::{sweep, video};

fn main() {
    let scenario = video::slow_pan().with_duration(experiment_duration());
    let calibrated = PipelineConfig::calibrated(&scenario, MASTER_SEED);
    let calibrated_threshold = calibrated.cache.aknn.distance_threshold;
    let baseline = bench::summary_run(&scenario, &calibrated, SystemVariant::NoCache, MASTER_SEED);

    let mut table = Table::new(vec![
        "threshold",
        "multiplier",
        "hit_rate",
        "reuse",
        "accuracy",
        "accuracy_delta",
        "mean_ms",
    ]);
    for multiplier in sweep::linear_sweep(0.25, 2.5, 10) {
        let threshold = calibrated_threshold * multiplier;
        let config = calibrated
            .clone()
            .with_cache(calibrated.cache.clone().with_aknn(AknnConfig {
                distance_threshold: threshold,
                ..calibrated.cache.aknn
            }));
        let report = bench::summary_run(&scenario, &config, SystemVariant::Full, MASTER_SEED);
        table.row(vec![
            fnum(threshold, 2),
            fnum(multiplier, 2),
            fpct(report.cache.hit_rate()),
            fpct(report.reuse_rate()),
            fpct(report.accuracy),
            format!("{:+.1}pp", report.accuracy_delta_vs(&baseline) * 100.0),
            fnum(report.latency_ms.mean, 2),
        ]);
    }
    emit(
        "r2_accuracy_threshold",
        "accuracy and reuse vs distance threshold (slow pan)",
        &table,
    );
    println!(
        "calibrated threshold: {:.2} (multiplier 1.0); baseline accuracy {}",
        calibrated_threshold,
        fpct(baseline.accuracy)
    );
}
