//! R-4 — per-frame latency CDF, Full vs NoCache, on the walking tour
//! (the hardest single-device scenario, so the CDF shows both the reuse
//! mass near zero and the inference tail).

use approxcache::prelude::*;
use bench::{emit, experiment_duration, MASTER_SEED};
use simcore::table::{fnum, Table};
use workloads::video;

fn main() {
    let scenario = video::walking_tour().with_duration(experiment_duration());
    let config = PipelineConfig::calibrated(&scenario, MASTER_SEED);
    let base = bench::summary_run(&scenario, &config, SystemVariant::NoCache, MASTER_SEED);
    let full = bench::summary_run(&scenario, &config, SystemVariant::Full, MASTER_SEED);

    let points = 21;
    let base_series = base.latency_cdf().series(points);
    let full_series = full.latency_cdf().series(points);

    let mut table = Table::new(vec![
        "cum_fraction",
        "no_cache_latency_ms",
        "full_latency_ms",
    ]);
    for (b, f) in base_series.iter().zip(&full_series) {
        table.row(vec![fnum(b.1, 2), fnum(b.0, 2), fnum(f.0, 2)]);
    }
    emit(
        "r4_latency_cdf",
        "per-frame latency CDF, walking tour",
        &table,
    );
    println!(
        "median: no-cache {:.1} ms vs full {:.2} ms; p99: {:.1} vs {:.1}",
        base.latency_ms.p50, full.latency_ms.p50, base.latency_ms.p99, full.latency_ms.p99
    );
}
