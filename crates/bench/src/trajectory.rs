//! Per-run perf snapshots: the `BENCH_<n>.json` trajectory.
//!
//! `perf_smoke` appends every run to the cumulative `BENCH.json`, but the
//! trajectory readers scan for *per-run* `BENCH_<n>.json` snapshots — for
//! a while nothing wrote those, so the recorded speedups were invisible
//! (the trajectory read back empty). This module is now the single home
//! of the snapshot naming scheme: it writes one snapshot per run,
//! backfills snapshots for runs that predate the scheme, and reads the
//! ordered trajectory back.
//!
//! Snapshot `BENCH_<n>.json` holds run `n` (1-indexed, matching its
//! position in the cumulative `runs` array) wrapped as
//! `{"schema": 1, "run_index": n, "run": {…}}`. Snapshots are immutable
//! once written: [`backfill`] only fills gaps, never rewrites.

use std::path::{Path, PathBuf};

use serde_json::Value;

/// Builds a JSON object in entry order (the vendored `serde_json` has no
/// `json!` macro).
fn object(entries: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    let mut map = serde_json::Map::new();
    for (key, value) in entries {
        map.insert(key.to_owned(), value);
    }
    Value::Object(map)
}

/// One point of the recorded perf trajectory, extracted from a run
/// snapshot. Fields that a (possibly older) run never measured are
/// `None`, not zero — absence and "measured as zero" must not alias.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TrajectoryPoint {
    /// 1-indexed run number (`n` in `BENCH_<n>.json`).
    pub run: usize,
    /// The run's `BENCH_LABEL` (or "dev").
    pub label: String,
    /// Flat-vs-reference lookup speedup at the 4096-entry point.
    pub lookup_speedup_at_4096: Option<f64>,
    /// Aggregate 4-shard/4-thread over single-lock throughput ratio.
    pub concurrent_speedup: Option<f64>,
    /// End-to-end experiment wall clock, milliseconds.
    pub e2e_wall_ms: Option<f64>,
    /// NSW-over-linear lookup speedup at the 65 536-entry frontier point.
    pub nsw_speedup_at_65536: Option<f64>,
    /// NSW recall@k against the exact oracle at the same frontier point.
    pub nsw_recall_at_65536: Option<f64>,
    /// Fleet-throughput speedup at `default_threads()` workers over the
    /// 1-worker baseline.
    pub fleet_speedup: Option<f64>,
}

/// The snapshot path for 1-indexed run `n` under `dir`.
pub fn snapshot_path(dir: &Path, n: usize) -> PathBuf {
    dir.join(format!("BENCH_{n}.json"))
}

/// Run numbers that have a snapshot under `dir`, ascending. Non-matching
/// files are ignored; an unreadable directory reads as empty (the
/// trajectory is informational, never load-bearing).
pub fn discover(dir: &Path) -> Vec<usize> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut runs: Vec<usize> = entries
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name();
            let name = name.to_str()?;
            let middle = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
            middle.parse::<usize>().ok()
        })
        .collect();
    runs.sort_unstable();
    runs.dedup();
    runs
}

/// Writes `run` (one entry of the cumulative `runs` array) as the
/// snapshot for 1-indexed run `n`, returning the path written.
///
/// # Errors
///
/// Returns a message when serialization or the write fails.
pub fn write_snapshot(dir: &Path, n: usize, run: &serde_json::Value) -> Result<PathBuf, String> {
    let path = snapshot_path(dir, n);
    let doc = object([
        ("schema", Value::from(1u64)),
        ("run_index", Value::from(n)),
        ("run", run.clone()),
    ]);
    let text =
        serde_json::to_string_pretty(&doc).map_err(|e| format!("serialize snapshot {n}: {e}"))?;
    std::fs::write(&path, text + "\n").map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Writes a snapshot for every run in the cumulative document that does
/// not have one yet, returning the run numbers written (ascending).
/// Existing snapshots are left untouched.
///
/// # Errors
///
/// Returns a message when the document has no `runs` array or a write
/// fails.
pub fn backfill(dir: &Path, cumulative: &serde_json::Value) -> Result<Vec<usize>, String> {
    let runs = cumulative["runs"]
        .as_array()
        .ok_or_else(|| "cumulative document has no \"runs\" array".to_string())?;
    let mut written = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        let n = i + 1;
        if snapshot_path(dir, n).exists() {
            continue;
        }
        write_snapshot(dir, n, run)?;
        written.push(n);
    }
    Ok(written)
}

/// Reads the ordered trajectory back from the snapshots under `dir`.
///
/// # Errors
///
/// Returns a message when a discovered snapshot cannot be read or
/// parsed — a present-but-broken snapshot is worth surfacing, unlike a
/// merely absent one.
pub fn read(dir: &Path) -> Result<Vec<TrajectoryPoint>, String> {
    discover(dir)
        .into_iter()
        .map(|n| {
            let path = snapshot_path(dir, n);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let doc: serde_json::Value = serde_json::from_str(&text)
                .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
            Ok(point_from_run(n, &doc["run"]))
        })
        .collect()
}

/// Extracts the trajectory fields from one run entry.
fn point_from_run(n: usize, run: &serde_json::Value) -> TrajectoryPoint {
    let lookup_speedup_at_4096 = run["sizes"]
        .as_array()
        .and_then(|sizes| sizes.iter().find(|p| p["size"].as_u64() == Some(4096)))
        .and_then(|p| p["lookup_speedup"].as_f64());
    let frontier_at = |index: &str, field: &str| {
        run["frontier"]
            .as_array()
            .and_then(|points| {
                points.iter().find(|p| {
                    p["index"].as_str() == Some(index) && p["size"].as_u64() == Some(65_536)
                })
            })
            .and_then(|p| p[field].as_f64())
    };
    let nsw_speedup_at_65536 = match (
        frontier_at("linear", "lookup_ns"),
        frontier_at("nsw", "lookup_ns"),
    ) {
        (Some(linear), Some(nsw)) if nsw > 0.0 => Some(linear / nsw),
        _ => None,
    };
    TrajectoryPoint {
        run: n,
        label: run["label"].as_str().unwrap_or("?").to_owned(),
        lookup_speedup_at_4096,
        concurrent_speedup: run["concurrent_speedup"].as_f64(),
        e2e_wall_ms: run["e2e_wall_ms"].as_f64(),
        nsw_speedup_at_65536,
        nsw_recall_at_65536: frontier_at("nsw", "recall_at_k"),
        fleet_speedup: run["fleet_speedup"].as_f64(),
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact round-trip through JSON is the point
mod tests {
    use super::*;

    /// A fresh scratch directory per test (process id plus test name, so
    /// parallel tests in one binary never collide).
    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bench-trajectory-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_value(label: &str, speedup: f64) -> Value {
        object([
            ("label", Value::from(label)),
            (
                "sizes",
                Value::Array(vec![
                    object([
                        ("size", Value::from(16u64)),
                        ("lookup_speedup", Value::from(1.5)),
                    ]),
                    object([
                        ("size", Value::from(4096u64)),
                        ("lookup_speedup", Value::from(speedup)),
                    ]),
                ]),
            ),
            ("concurrent_speedup", Value::from(2.4)),
            ("fleet_speedup", Value::from(3.6)),
            ("e2e_wall_ms", Value::from(4.2)),
            (
                "frontier",
                Value::Array(vec![
                    frontier_value("linear", 65_536, 180_000.0, 1.0),
                    frontier_value("nsw", 65_536, 18_000.0, 0.97),
                    frontier_value("nsw", 4096, 9_000.0, 0.99),
                ]),
            ),
        ])
    }

    fn frontier_value(index: &str, size: u64, lookup_ns: f64, recall: f64) -> Value {
        object([
            ("index", Value::from(index)),
            ("size", Value::from(size)),
            ("lookup_ns", Value::from(lookup_ns)),
            ("recall_at_k", Value::from(recall)),
        ])
    }

    #[test]
    fn discover_ignores_noise_and_sorts() {
        let dir = scratch("discover");
        for name in ["BENCH_2.json", "BENCH_1.json", "BENCH_10.json"] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        for noise in ["BENCH.json", "BENCH_x.json", "BENCH_3.txt", "notes.md"] {
            std::fs::write(dir.join(noise), "{}").unwrap();
        }
        assert_eq!(discover(&dir), vec![1, 2, 10]);
        assert!(discover(&dir.join("missing")).is_empty());
    }

    #[test]
    fn backfill_fills_gaps_without_rewriting() {
        let dir = scratch("backfill");
        let cumulative = object([
            ("schema", Value::from(1u64)),
            (
                "runs",
                Value::Array(vec![run_value("first", 3.1), run_value("second", 3.2)]),
            ),
        ]);
        // Pre-write run 1 with sentinel content; backfill must keep it.
        std::fs::write(snapshot_path(&dir, 1), "{\"sentinel\": true}\n").unwrap();
        assert_eq!(backfill(&dir, &cumulative).unwrap(), vec![2]);
        let kept = std::fs::read_to_string(snapshot_path(&dir, 1)).unwrap();
        assert!(
            kept.contains("sentinel"),
            "existing snapshots are immutable"
        );
        // A second backfill is a no-op.
        assert_eq!(backfill(&dir, &cumulative).unwrap(), Vec::<usize>::new());
        let missing_runs = object([("schema", Value::from(1u64))]);
        assert!(backfill(&dir, &missing_runs).is_err());
    }

    #[test]
    fn read_round_trips_written_snapshots() {
        let dir = scratch("read");
        write_snapshot(&dir, 1, &run_value("kernels", 3.19)).unwrap();
        write_snapshot(&dir, 2, &run_value("sharded", 3.05)).unwrap();
        let points = read(&dir).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].run, 1);
        assert_eq!(points[0].label, "kernels");
        assert_eq!(points[0].lookup_speedup_at_4096, Some(3.19));
        assert_eq!(points[1].concurrent_speedup, Some(2.4));
        assert_eq!(points[1].fleet_speedup, Some(3.6));
        assert_eq!(points[1].e2e_wall_ms, Some(4.2));
        // Frontier extraction: speedup is linear/nsw lookup_ns at 65 536
        // entries only — the 4096-entry NSW point must not be picked up.
        assert_eq!(points[0].nsw_speedup_at_65536, Some(10.0));
        assert_eq!(points[0].nsw_recall_at_65536, Some(0.97));
    }

    #[test]
    fn read_tolerates_missing_fields_but_not_broken_files() {
        let dir = scratch("partial");
        // An old run that predates the concurrent series.
        write_snapshot(&dir, 1, &object([("label", Value::from("old"))])).unwrap();
        let points = read(&dir).unwrap();
        assert_eq!(points[0].label, "old");
        assert!(points[0].lookup_speedup_at_4096.is_none());
        assert!(points[0].concurrent_speedup.is_none());
        assert!(points[0].nsw_speedup_at_65536.is_none());
        assert!(points[0].nsw_recall_at_65536.is_none());
        assert!(points[0].fleet_speedup.is_none());
        std::fs::write(snapshot_path(&dir, 2), "not json").unwrap();
        assert!(read(&dir).is_err(), "broken snapshots must surface");
    }
}
