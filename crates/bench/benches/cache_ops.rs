//! R-12 — cache operation throughput: lookup (hit and miss) and insert
//! (including eviction) per policy at a realistic occupancy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use features::projection::random_vectors;
use reuse::{AdmissionPolicy, ApproxCache, CacheConfig, EntrySource, EvictionPolicy};
use simcore::{SimRng, SimTime};

const DIM: usize = 64;
const CAPACITY: usize = 256;

fn warm_cache(policy: EvictionPolicy) -> (ApproxCache<u32>, Vec<features::FeatureVector>) {
    let mut rng = SimRng::seed(3);
    let keys = random_vectors(CAPACITY, DIM, &mut rng);
    let mut cache: ApproxCache<u32> = ApproxCache::new(
        CacheConfig::new(CAPACITY)
            .with_eviction(policy)
            .with_admission(AdmissionPolicy::admit_all()),
    );
    for (i, key) in keys.iter().enumerate() {
        cache.insert(
            key.clone(),
            (i % 20) as u32,
            0.9,
            EntrySource::LocalInference,
            SimTime::from_millis(i as u64),
        );
    }
    (cache, keys)
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_lookup");
    let (mut cache, keys) = warm_cache(EvictionPolicy::Lru);
    let mut rng = SimRng::seed(4);
    let far = random_vectors(64, DIM, &mut rng);
    let mut now = SimTime::from_secs(10);

    group.bench_function("hit", |b| {
        let mut i = 0;
        b.iter(|| {
            now += simcore::SimDuration::from_micros(1);
            let q = &keys[i % keys.len()];
            i += 1;
            black_box(cache.lookup(q, now))
        });
    });
    group.bench_function("miss", |b| {
        let mut i = 0;
        b.iter(|| {
            now += simcore::SimDuration::from_micros(1);
            // Scaled-out keys are far from everything cached.
            let q = far[i % far.len()].scale(50.0);
            i += 1;
            black_box(cache.lookup(&q, now))
        });
    });
    group.finish();
}

fn bench_insert_with_eviction(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_insert_evict");
    for policy in EvictionPolicy::standard_set() {
        group.bench_with_input(
            BenchmarkId::new("policy", policy.name()),
            &policy,
            |b, &policy| {
                let (mut cache, _) = warm_cache(policy);
                let mut rng = SimRng::seed(5);
                let fresh = random_vectors(512, DIM, &mut rng);
                let mut i = 0;
                let mut now = SimTime::from_secs(100);
                b.iter(|| {
                    now += simcore::SimDuration::from_micros(3);
                    let key = fresh[i % fresh.len()].scale(1.0 + (i as f32) * 0.001);
                    i += 1;
                    // At capacity: every insert evicts.
                    black_box(cache.insert(key, 1, 0.9, EntrySource::LocalInference, now))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_insert_with_eviction);
criterion_main!(benches);
