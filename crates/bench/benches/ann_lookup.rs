//! R-11 — index comparison: lookup latency of linear scan vs kd-tree vs
//! LSH as the cache grows. Demonstrates the claim the cost model relies
//! on: lookups are microseconds while inference is tens of milliseconds,
//! and the linear scan is unbeatable at mobile cache sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ann::{KdTree, LinearScan, LshConfig, LshIndex, NnIndex, NswConfig, NswIndex};
use features::projection::random_vectors;
use simcore::SimRng;

const DIM: usize = 64;

fn build(index: &mut dyn NnIndex, keys: &[features::FeatureVector]) {
    for (i, key) in keys.iter().enumerate() {
        index.insert(i as u64, key.clone());
    }
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ann_lookup");
    for &size in &[100usize, 1_000, 10_000] {
        let mut rng = SimRng::seed(1);
        let keys = random_vectors(size, DIM, &mut rng);
        let queries = random_vectors(64, DIM, &mut rng);

        let mut linear = LinearScan::new(DIM);
        build(&mut linear, &keys);
        let mut kdtree = KdTree::new(DIM);
        build(&mut kdtree, &keys);
        let mut lsh = LshIndex::new(DIM, LshConfig::default());
        build(&mut lsh, &keys);
        let mut nsw = NswIndex::new(DIM, NswConfig::default());
        build(&mut nsw, &keys);

        let indexes: [(&str, &dyn NnIndex); 4] = [
            ("linear", &linear),
            ("kdtree", &kdtree),
            ("lsh", &lsh),
            ("nsw", &nsw),
        ];
        for (name, index) in indexes {
            group.bench_with_input(BenchmarkId::new(name, size), &size, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    black_box(index.nearest(q, 4))
                });
            });
        }
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("ann_insert");
    let mut rng = SimRng::seed(2);
    let keys = random_vectors(1_000, DIM, &mut rng);
    group.bench_function("linear_1k", |b| {
        b.iter(|| {
            let mut index = LinearScan::new(DIM);
            build(&mut index, &keys);
            black_box(index.len())
        });
    });
    group.bench_function("lsh_1k", |b| {
        b.iter(|| {
            let mut index = LshIndex::new(DIM, LshConfig::default());
            build(&mut index, &keys);
            black_box(index.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_insert);
criterion_main!(benches);
