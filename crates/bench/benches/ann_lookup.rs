//! R-11 — index comparison: lookup latency of linear scan vs kd-tree vs
//! LSH as the cache grows. Demonstrates the claim the cost model relies
//! on: lookups are microseconds while inference is tens of milliseconds,
//! and the linear scan is unbeatable at mobile cache sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ann::{IndexConfig, LshConfig, NnIndex, NswConfig};
use features::projection::random_vectors;
use simcore::SimRng;

const DIM: usize = 64;

fn build(index: &mut dyn NnIndex, keys: &[features::FeatureVector]) {
    for (i, key) in keys.iter().enumerate() {
        index.insert(i as u64, key.clone());
    }
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ann_lookup");
    for &size in &[100usize, 1_000, 10_000] {
        let mut rng = SimRng::seed(1);
        let keys = random_vectors(size, DIM, &mut rng);
        let queries = random_vectors(64, DIM, &mut rng);

        let mut linear = ann::build(DIM, &IndexConfig::Linear);
        build(linear.as_mut(), &keys);
        let mut kdtree = ann::build(DIM, &IndexConfig::KdTree);
        build(kdtree.as_mut(), &keys);
        let mut lsh = ann::build(DIM, &IndexConfig::Lsh(LshConfig::default()));
        build(lsh.as_mut(), &keys);
        let mut nsw = ann::build(DIM, &IndexConfig::Nsw(NswConfig::default()));
        build(nsw.as_mut(), &keys);

        let indexes: [(&str, &dyn NnIndex); 4] = [
            ("linear", linear.as_ref()),
            ("kdtree", kdtree.as_ref()),
            ("lsh", lsh.as_ref()),
            ("nsw", nsw.as_ref()),
        ];
        for (name, index) in indexes {
            group.bench_with_input(BenchmarkId::new(name, size), &size, |b, _| {
                let mut i = 0;
                let mut scratch = ann::IndexScratch::new();
                let mut out = Vec::new();
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    index.nearest_into(q, 4, &mut scratch, &mut out);
                    black_box(out.len())
                });
            });
        }
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("ann_insert");
    let mut rng = SimRng::seed(2);
    let keys = random_vectors(1_000, DIM, &mut rng);
    group.bench_function("linear_1k", |b| {
        b.iter(|| {
            let mut index = ann::build(DIM, &IndexConfig::Linear);
            build(index.as_mut(), &keys);
            black_box(index.len())
        });
    });
    group.bench_function("lsh_1k", |b| {
        b.iter(|| {
            let mut index = ann::build(DIM, &IndexConfig::Lsh(LshConfig::default()));
            build(index.as_mut(), &keys);
            black_box(index.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_insert);
criterion_main!(benches);
