//! R-13 — key-generation and wire-codec microbenchmarks: the per-frame
//! fixed costs of the caching machinery (projection, hashing,
//! normalization) and the encode/decode cost of peer messages.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use features::{projection::random_vectors, Normalizer, RandomProjection, SimHasher};
use p2pnet::{P2pMessage, RemoteHit, WireEntry};
use simcore::SimRng;

fn bench_key_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_generation");
    let mut rng = SimRng::seed(1);
    let descriptors = random_vectors(64, 256, &mut rng);
    let projection = RandomProjection::new(256, 64, 7);
    let hasher = SimHasher::new(64, 7);
    let keys = projection.project_all(&descriptors);
    let normalizer = Normalizer::fit(&keys).unwrap();

    group.bench_function("project_256_to_64", |b| {
        let mut i = 0;
        b.iter(|| {
            let d = &descriptors[i % descriptors.len()];
            i += 1;
            black_box(projection.project(d))
        });
    });
    group.bench_function("simhash_64", |b| {
        let mut i = 0;
        b.iter(|| {
            let k = &keys[i % keys.len()];
            i += 1;
            black_box(hasher.hash(k))
        });
    });
    group.bench_function("normalize_64", |b| {
        let mut i = 0;
        b.iter(|| {
            let k = &keys[i % keys.len()];
            i += 1;
            black_box(normalizer.apply(k).unwrap())
        });
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    let mut rng = SimRng::seed(2);
    let key = random_vectors(1, 64, &mut rng).remove(0);
    let query = P2pMessage::Query {
        query_id: 7,
        key: key.clone(),
    };
    let reply = P2pMessage::Reply {
        query_id: 7,
        hit: Some(RemoteHit {
            label: 3,
            confidence: 0.9,
            distance: 0.4,
        }),
    };
    let advertise = P2pMessage::Advertise {
        entries: (0..4)
            .map(|i| WireEntry {
                key: key.clone(),
                label: i,
                confidence: 0.9,
            })
            .collect(),
    };
    for (name, message) in [
        ("query", &query),
        ("reply", &reply),
        ("advertise4", &advertise),
    ] {
        let encoded = message.encode();
        group.bench_function(format!("encode_{name}"), |b| {
            b.iter(|| black_box(message.encode()));
        });
        group.bench_function(format!("decode_{name}"), |b| {
            b.iter(|| black_box(P2pMessage::decode(&encoded).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_key_generation, bench_codec);
criterion_main!(benches);
