//! R-14 — end-to-end pipeline step cost (host CPU, not simulated time):
//! how expensive one `process_frame` call is on the hit path vs the miss
//! path, and one whole simulated second of a scenario. Keeps the
//! simulator honest about its own overheads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use approxcache::{run, Detail, DeviceBuilder, DeviceId, PipelineConfig, Scenario, SystemVariant};
use imu::{ImuSample, MotionProfile};
use scene::{ClassId, ClassUniverse, Frame, ObjectId, SceneConfig};
use simcore::{SimRng, SimTime};

fn frame_for(universe: &ClassUniverse, class: u32, at: SimTime) -> Frame {
    Frame {
        at,
        descriptor: universe.center(ClassId(class)).clone(),
        truth: ClassId(class),
        subject: ObjectId(class as u64),
        geometry: scene::camera::ViewGeometry {
            bearing_offset: 0.0,
            distance: 3.0,
        },
    }
}

fn moving_window(at_ms: u64) -> Vec<ImuSample> {
    (0..10)
        .map(|i| ImuSample {
            at: SimTime::from_millis(at_ms + i * 10),
            gyro: [0.0, 0.0, 1.5],
            accel: [0.5, 0.0, 0.0],
        })
        .collect()
}

fn bench_process_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_step");
    let mut rng = SimRng::seed(1);
    let universe = ClassUniverse::generate(&SceneConfig::default(), &mut rng);
    let config = PipelineConfig::new();

    group.bench_function("hit_path", |b| {
        let mut device = DeviceBuilder::new(DeviceId(0), &config, &universe, 256, 1)
            .variant(SystemVariant::Full)
            .build();
        // Warm: one inference caches class 0.
        device.process_frame(
            &frame_for(&universe, 0, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        let mut t = 1u64;
        b.iter(|| {
            let now = SimTime::from_millis(t * 100);
            let frame = frame_for(&universe, 0, now);
            t += 1;
            black_box(device.process_frame(&frame, &moving_window(t * 100), &[], now))
        });
    });

    // Identical to hit_path but with the decision trace enabled: the
    // delta between the two is the cost of tracing (the default-off
    // ring must cost nothing; this pins the enabled cost too).
    group.bench_function("hit_path_traced", |b| {
        let traced_config = PipelineConfig::new().with_trace_capacity(Some(4096));
        let mut device = DeviceBuilder::new(DeviceId(0), &traced_config, &universe, 256, 1)
            .variant(SystemVariant::Full)
            .build();
        device.process_frame(
            &frame_for(&universe, 0, SimTime::ZERO),
            &moving_window(0),
            &[],
            SimTime::ZERO,
        );
        let mut t = 1u64;
        b.iter(|| {
            let now = SimTime::from_millis(t * 100);
            let frame = frame_for(&universe, 0, now);
            t += 1;
            black_box(device.process_frame(&frame, &moving_window(t * 100), &[], now))
        });
    });

    group.bench_function("miss_path", |b| {
        let mut device = DeviceBuilder::new(DeviceId(0), &config, &universe, 256, 1)
            .variant(SystemVariant::NoCache)
            .build();
        let mut t = 1u64;
        b.iter(|| {
            let now = SimTime::from_millis(t * 100);
            let frame = frame_for(&universe, (t % 20) as u32, now);
            t += 1;
            black_box(device.process_frame(&frame, &moving_window(t * 100), &[], now))
        });
    });
    group.finish();
}

fn bench_whole_scenario_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_second");
    group.sample_size(10);
    let scenario = Scenario::single_device(MotionProfile::SlowPan { deg_per_sec: 10.0 })
        .with_duration(simcore::SimDuration::from_secs(1));
    let config = PipelineConfig::calibrated(&scenario, 1);
    group.bench_function("slow_pan_1s_full", |b| {
        b.iter(|| {
            black_box(
                run(&scenario, &config, SystemVariant::Full, 1, Detail::Summary)
                    .expect("valid scenario"),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_process_frame, bench_whole_scenario_second);
criterion_main!(benches);
