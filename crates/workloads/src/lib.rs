//! Named workloads and sweep helpers for the experiment suite.
//!
//! Every `R-*` experiment in `EXPERIMENTS.md` runs one of these scenarios
//! (or a sweep over them), so their definitions live in one place:
//!
//! - [`video`] — the four standard single-device scenarios the abstract's
//!   mechanisms target (stationary, slow pan, walking tour, object churn)
//!   plus turn-and-look.
//! - [`multi`] — shared-world multi-device scenarios (museum, campus).
//! - [`sweep`] — parameter-sweep helpers and the scenario × variant run
//!   matrix.
//! - [`trace`] — JSON persistence of scenarios and reports.
//!
//! # Example
//!
//! ```
//! use workloads::video;
//!
//! let scenario = video::stationary();
//! assert_eq!(scenario.name, "stationary");
//! assert_eq!(scenario.devices, 1);
//! ```

pub mod multi;
pub mod record;
pub mod sweep;
pub mod trace;
pub mod video;

pub use record::StreamRecording;
pub use sweep::{run_matrix, run_matrix_parallel, MatrixCell};
