//! JSON persistence of scenarios and reports.
//!
//! Experiment binaries write their raw reports next to the CSV tables so
//! a run can be re-analysed without re-simulating; scenario files let a
//! workload be shared between machines.

use std::fs;
use std::io;
use std::path::Path;

use approxcache::{RunReport, Scenario};

/// Saves a scenario definition as pretty JSON.
///
/// # Errors
///
/// Returns any I/O error from directory creation or the write.
pub fn save_scenario<P: AsRef<Path>>(scenario: &Scenario, path: P) -> io::Result<()> {
    write_json(path, scenario)
}

/// Loads a scenario definition.
///
/// # Errors
///
/// Returns an error if the file cannot be read or parsed.
pub fn load_scenario<P: AsRef<Path>>(path: P) -> io::Result<Scenario> {
    let text = fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Saves a run report as pretty JSON.
///
/// # Errors
///
/// Returns any I/O error from directory creation or the write.
pub fn save_report<P: AsRef<Path>>(report: &RunReport, path: P) -> io::Result<()> {
    write_json(path, report)
}

/// Loads a run report.
///
/// # Errors
///
/// Returns an error if the file cannot be read or parsed.
pub fn load_report<P: AsRef<Path>>(path: P) -> io::Result<RunReport> {
    let text = fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn write_json<P: AsRef<Path>, T: serde::Serialize>(path: P, value: &T) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    let text = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video;
    use approxcache::{run, Detail, PipelineConfig, SystemVariant};
    use simcore::SimDuration;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("workloads-trace-{}-{name}", std::process::id()))
    }

    #[test]
    fn scenario_round_trip() {
        let scenario = video::object_churn();
        let path = temp_path("scenario.json");
        save_scenario(&scenario, &path).unwrap();
        let loaded = load_scenario(&path).unwrap();
        assert_eq!(loaded, scenario);
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn report_round_trip() {
        let scenario = video::stationary().with_duration(SimDuration::from_secs(2));
        let config = PipelineConfig::calibrated(&scenario, 1);
        let report = run(&scenario, &config, SystemVariant::Full, 1, Detail::Summary)
            .expect("valid scenario")
            .report;
        let path = temp_path("report.json");
        save_report(&report, &path).unwrap();
        let loaded = load_report(&path).unwrap();
        assert_eq!(loaded.frames, report.frames);
        assert_eq!(loaded.latencies_ms, report.latencies_ms);
        assert_eq!(loaded.path_counts, report.path_counts);
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = temp_path("garbage.json");
        fs::write(&path, "not json").unwrap();
        assert!(load_scenario(&path).is_err());
        assert!(load_report(&path).is_err());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_scenario(temp_path("missing.json")).is_err());
    }
}
