//! Shared-world multi-device scenarios.

use approxcache::Scenario;
use imu::MotionProfile;
use scene::SceneConfig;

/// A museum gallery: `devices` visitors inspecting exhibits in one room
/// (turn-and-look motion, spawn points a few metres apart, well within
/// WiFi-Direct range). The canonical peer-collaboration scenario — every
/// visitor looks at the same exhibits, so one visitor's inference serves
/// the others.
pub fn museum(devices: usize) -> Scenario {
    Scenario::multi_device(
        MotionProfile::TurnAndLook {
            dwell_secs: 3.0,
            turn_deg: 45.0,
        },
        devices,
    )
    .with_name(&format!("museum-x{devices}"))
    .with_scene(SceneConfig {
        // A denser, smaller room: more shared subjects.
        num_objects: 40,
        world_extent: 12.0,
        ..SceneConfig::default()
    })
}

/// A campus walk: `devices` pedestrians walking independently across a
/// large area. Peers drift in and out of range; collaboration helps less
/// than in the museum — the contrast the peer-scaling experiment shows.
pub fn campus(devices: usize) -> Scenario {
    let mut scenario = Scenario::multi_device(MotionProfile::Walking { speed_mps: 1.4 }, devices)
        .with_name(&format!("campus-x{devices}"))
        .with_scene(SceneConfig {
            num_objects: 120,
            world_extent: 60.0,
            ..SceneConfig::default()
        });
    scenario.spawn_spacing = 15.0;
    scenario
}

/// Museums of growing size for the peer-scaling sweep.
pub fn peer_scaling_set(counts: &[usize]) -> Vec<Scenario> {
    counts.iter().map(|&n| museum(n.max(1))).collect()
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn museum_is_dense_and_collaborative() {
        let s = museum(8);
        s.validate().expect("scenario validates");
        assert_eq!(s.devices, 8);
        assert_eq!(s.scene.world_extent, 12.0);
        assert!(s.name.contains("x8"));
        // All spawn points must be within WiFi-Direct range (30 m) of the
        // origin neighbourhood.
        for d in 0..8 {
            let (x, y) = approxcache::config::spawn_position(d, 8, s.spawn_spacing);
            assert!((x * x + y * y).sqrt() < 30.0, "device {d} out of range");
        }
    }

    #[test]
    fn campus_is_spread_out() {
        let s = campus(4);
        s.validate().expect("scenario validates");
        assert!(s.spawn_spacing > museum(4).spawn_spacing);
        assert!(s.scene.world_extent > museum(4).scene.world_extent);
    }

    #[test]
    fn peer_scaling_set_clamps_zero_to_one() {
        let set = peer_scaling_set(&[0, 2, 4]);
        assert_eq!(set[0].devices, 1);
        assert_eq!(set[1].devices, 2);
        assert_eq!(set[2].devices, 4);
    }
}
