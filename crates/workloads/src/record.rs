//! Stream recording and replay.
//!
//! A [`StreamRecording`] freezes one device's sensory input — every camera
//! frame and every IMU sample — so the identical stimulus can be replayed
//! against different pipeline configurations (the fair way to A/B test
//! cache policies), shipped to another machine, or archived as a
//! regression fixture. Recordings serialize to JSON.

use serde::{Deserialize, Serialize};

use approxcache::{Device, FrameOutcome};
use imu::{ImuSample, ImuSynthesizer, MotionProfile, MotionTrace};
use scene::{ClassUniverse, Frame, FrameRenderer, SceneConfig, World};
use simcore::{SimDuration, SimRng, SimTime};

/// A frozen single-device sensory stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamRecording {
    /// Camera frame rate the stream was captured at.
    pub fps: f64,
    /// IMU sample rate.
    pub imu_rate_hz: f64,
    /// The frames, in time order.
    pub frames: Vec<Frame>,
    /// The full IMU sample stream.
    pub imu: Vec<ImuSample>,
    /// The scene the stream was rendered from (needed by consumers that
    /// rebuild the class universe, e.g. to construct a matching DNN).
    pub scene: SceneConfig,
    /// The seed the world and universe were generated from.
    pub world_seed: u64,
}

impl StreamRecording {
    /// Records a stream: a fresh world from `scene` (seeded by `seed`), a
    /// motion trace under `profile`, and the rendered frames at 10 fps /
    /// 100 Hz IMU.
    ///
    /// # Panics
    ///
    /// Panics if `scene` is invalid or `duration` is zero.
    pub fn record(
        profile: MotionProfile,
        scene: SceneConfig,
        duration: SimDuration,
        seed: u64,
    ) -> StreamRecording {
        scene.validate();
        assert!(!duration.is_zero(), "record: duration must be positive");
        let fps = 10.0;
        let imu_rate_hz = 100.0;
        let root = SimRng::seed(seed);
        let mut world_rng = root.split("world");
        let universe = ClassUniverse::generate(&scene, &mut world_rng);
        let world = World::generate(&universe, &scene, &mut world_rng);
        let renderer = FrameRenderer::new(&scene);
        let mut motion_rng = root.split("motion");
        let trace = MotionTrace::generate(profile, duration, imu_rate_hz, &mut motion_rng);
        let imu = ImuSynthesizer::default().synthesize(&trace, &mut motion_rng);

        let mut frame_rng = root.split("frames");
        let frame_interval = SimDuration::from_secs_f64(1.0 / fps);
        let total = (duration.as_secs_f64() * fps).floor() as usize;
        let frames = (1..=total)
            .map(|i| {
                let now = SimTime::ZERO + frame_interval * i as u64;
                renderer.render(&world, &trace.pose_at(now), now, &mut frame_rng)
            })
            .collect();
        StreamRecording {
            fps,
            imu_rate_hz,
            frames,
            imu,
            scene,
            world_seed: seed,
        }
    }

    /// The class universe this stream was rendered over (reconstructed
    /// from the recorded seed — needed to build a matching `DnnModel`).
    pub fn universe(&self) -> ClassUniverse {
        let mut world_rng = SimRng::seed(self.world_seed).split("world");
        ClassUniverse::generate(&self.scene, &mut world_rng)
    }

    /// Number of recorded frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True for an empty recording (never produced by `record`).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Replays the stream through `device` (with no peers), returning the
    /// per-frame outcomes. The same recording replayed on identically
    /// configured devices yields identical outcomes.
    pub fn replay_on(&self, device: &mut Device) -> Vec<FrameOutcome> {
        let mut outcomes = Vec::with_capacity(self.frames.len());
        let mut prev = SimTime::ZERO;
        for frame in &self.frames {
            let start =
                ((prev.as_secs_f64() * self.imu_rate_hz).floor() as usize + 1).min(self.imu.len());
            let end = ((frame.at.as_secs_f64() * self.imu_rate_hz).floor() as usize + 1)
                .min(self.imu.len());
            let window = &self.imu[start.min(end)..end];
            outcomes.push(device.process_frame(frame, window, &[], frame.at));
            prev = frame.at;
        }
        outcomes
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (not expected for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a recording from JSON.
    ///
    /// # Errors
    ///
    /// Returns a parse error for malformed input.
    pub fn from_json(json: &str) -> Result<StreamRecording, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxcache::{DeviceId, PipelineConfig, ResolutionPath, SystemVariant};

    fn recording() -> StreamRecording {
        StreamRecording::record(
            MotionProfile::SlowPan { deg_per_sec: 10.0 },
            SceneConfig::default(),
            SimDuration::from_secs(5),
            33,
        )
    }

    fn device_for(recording: &StreamRecording, variant: SystemVariant) -> Device {
        let mut config = PipelineConfig::new().with_peer(None);
        let threshold = approxcache::config::calibrate_threshold_for(
            &recording.scene,
            config.key_dim,
            config.projection_seed,
            33,
        );
        config.cache = config.cache.clone().with_aknn(ann::AknnConfig {
            distance_threshold: threshold,
            ..ann::AknnConfig::default()
        });
        approxcache::DeviceBuilder::new(
            DeviceId(0),
            &config,
            &recording.universe(),
            recording.scene.descriptor_dim,
            33,
        )
        .variant(variant)
        .build()
    }

    #[test]
    fn recording_has_expected_shape() {
        let r = recording();
        assert_eq!(r.len(), 50, "5 s at 10 fps");
        assert!(!r.is_empty());
        assert_eq!(r.imu.len(), 501, "5 s at 100 Hz (inclusive end)");
        // Frames are in time order.
        for w in r.frames.windows(2) {
            assert!(w[1].at > w[0].at);
        }
    }

    #[test]
    fn recording_is_deterministic() {
        assert_eq!(recording(), recording());
    }

    #[test]
    fn replay_is_reproducible_across_devices() {
        let r = recording();
        let mut a = device_for(&r, SystemVariant::Full);
        let mut b = device_for(&r, SystemVariant::Full);
        let outcomes_a = r.replay_on(&mut a);
        let outcomes_b = r.replay_on(&mut b);
        assert_eq!(outcomes_a, outcomes_b);
    }

    #[test]
    fn replay_supports_ab_comparison() {
        // The point of recordings: identical stimulus, different systems.
        let r = recording();
        let mut cached = device_for(&r, SystemVariant::Full);
        let mut uncached = device_for(&r, SystemVariant::NoCache);
        let with_cache = r.replay_on(&mut cached);
        let without = r.replay_on(&mut uncached);
        let reused = with_cache
            .iter()
            .filter(|o| o.path != ResolutionPath::FullInference)
            .count();
        assert!(reused > with_cache.len() / 2, "reused {reused}");
        assert!(without
            .iter()
            .all(|o| o.path == ResolutionPath::FullInference));
        // Same ground truth in both replays.
        for (a, b) in with_cache.iter().zip(&without) {
            assert_eq!(a.truth, b.truth);
        }
    }

    #[test]
    fn json_round_trip() {
        let r = StreamRecording::record(
            MotionProfile::Stationary,
            SceneConfig {
                descriptor_dim: 16,
                num_objects: 4,
                ..SceneConfig::default()
            },
            SimDuration::from_secs(1),
            7,
        );
        let json = r.to_json().unwrap();
        let parsed = StreamRecording::from_json(&json).unwrap();
        assert_eq!(parsed, r);
        assert!(StreamRecording::from_json("{bad").is_err());
    }

    #[test]
    fn universe_reconstruction_matches() {
        let r = recording();
        // Rendering's truth labels are consistent with the reconstructed
        // universe: every frame's descriptor classifies to its truth under
        // the ideal nearest-centre rule in the vast majority of cases.
        let universe = r.universe();
        let agree = r
            .frames
            .iter()
            .filter(|f| universe.nearest_class(&f.descriptor) == f.truth)
            .count();
        assert!(agree * 10 >= r.len() * 9, "only {agree}/{} agree", r.len());
    }
}
