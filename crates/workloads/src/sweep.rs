//! Sweep helpers and the run matrix.

use approxcache::{run, Detail, PipelineConfig, RunReport, Scenario, SystemVariant};

/// One cell of a scenario × variant matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// The scenario name.
    pub scenario: String,
    /// The variant that ran.
    pub variant: SystemVariant,
    /// The run's report.
    pub report: RunReport,
}

/// Runs every `(scenario, variant)` combination with a per-scenario
/// calibrated configuration and a deterministic seed derived from `seed`,
/// the scenario index and the variant — so any single cell can be
/// reproduced in isolation.
pub fn run_matrix(
    scenarios: &[Scenario],
    variants: &[SystemVariant],
    seed: u64,
) -> Vec<MatrixCell> {
    let mut cells = Vec::with_capacity(scenarios.len() * variants.len());
    for (scenario_index, scenario) in scenarios.iter().enumerate() {
        let config = PipelineConfig::calibrated(scenario, seed);
        for variant in variants {
            let cell_seed = seed
                .wrapping_mul(1_000_003)
                .wrapping_add(scenario_index as u64);
            let report = run(scenario, &config, *variant, cell_seed, Detail::Summary)
                .expect("valid scenario")
                .report;
            cells.push(MatrixCell {
                scenario: scenario.name.clone(),
                variant: *variant,
                report,
            });
        }
    }
    cells
}

/// Like [`run_matrix`] but runs cells on a pool of worker threads. The
/// result is *identical* to the sequential version (each cell derives its
/// own seed, so execution order cannot matter) — only wall-clock time
/// changes; run_all uses this to keep the full suite quick.
pub fn run_matrix_parallel(
    scenarios: &[Scenario],
    variants: &[SystemVariant],
    seed: u64,
    workers: usize,
) -> Vec<MatrixCell> {
    assert!(workers > 0, "run_matrix_parallel: workers must be positive");
    let jobs: Vec<(usize, &Scenario, SystemVariant)> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(i, s)| variants.iter().map(move |&v| (i, s, v)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<MatrixCell>> = (0..jobs.len()).map(|_| None).collect();
    let slot_refs: Vec<std::sync::Mutex<&mut Option<MatrixCell>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers.min(jobs.len()) {
            scope.spawn(|_| loop {
                let job = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if job >= jobs.len() {
                    break;
                }
                let (scenario_index, scenario, variant) = jobs[job];
                let config = PipelineConfig::calibrated(scenario, seed);
                let cell_seed = seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add(scenario_index as u64);
                let report = run(scenario, &config, variant, cell_seed, Detail::Summary)
                    .expect("valid scenario")
                    .report;
                **slot_refs[job].lock().expect("slot lock") = Some(MatrixCell {
                    scenario: scenario.name.clone(),
                    variant,
                    report,
                });
            });
        }
    })
    .expect("worker panicked");
    slots
        .into_iter()
        .map(|slot| slot.expect("every job filled its slot"))
        .collect()
}

/// Finds the cell for a given scenario/variant pair.
pub fn cell<'a>(
    cells: &'a [MatrixCell],
    scenario: &str,
    variant: SystemVariant,
) -> Option<&'a MatrixCell> {
    cells
        .iter()
        .find(|c| c.scenario == scenario && c.variant == variant)
}

/// Geometrically spaced capacity values for the eviction experiment.
pub fn capacity_sweep(from: usize, to: usize) -> Vec<usize> {
    assert!(
        from > 0 && from <= to,
        "capacity_sweep: need 0 < from <= to"
    );
    let mut values = Vec::new();
    let mut v = from;
    while v < to {
        values.push(v);
        v *= 2;
    }
    values.push(to);
    values
}

/// Evenly spaced multipliers for threshold sweeps: `count` points from
/// `from` to `to` inclusive.
pub fn linear_sweep(from: f64, to: f64, count: usize) -> Vec<f64> {
    assert!(count >= 2, "linear_sweep: need at least 2 points");
    (0..count)
        .map(|i| from + (to - from) * i as f64 / (count - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video;
    use simcore::SimDuration;

    #[test]
    fn matrix_covers_all_cells() {
        let scenarios: Vec<Scenario> =
            vec![video::stationary().with_duration(SimDuration::from_secs(3))];
        let variants = [SystemVariant::NoCache, SystemVariant::Full];
        let cells = run_matrix(&scenarios, &variants, 1);
        assert_eq!(cells.len(), 2);
        assert!(cell(&cells, "stationary", SystemVariant::Full).is_some());
        assert!(cell(&cells, "stationary", SystemVariant::NoImu).is_none());
        let no_cache = cell(&cells, "stationary", SystemVariant::NoCache).unwrap();
        let full = cell(&cells, "stationary", SystemVariant::Full).unwrap();
        assert!(full.report.latency_ms.mean < no_cache.report.latency_ms.mean);
    }

    #[test]
    fn matrix_is_deterministic() {
        let scenarios = vec![video::stationary().with_duration(SimDuration::from_secs(2))];
        let a = run_matrix(&scenarios, &[SystemVariant::Full], 9);
        let b = run_matrix(&scenarios, &[SystemVariant::Full], 9);
        assert_eq!(a[0].report.latencies_ms, b[0].report.latencies_ms);
    }

    #[test]
    fn parallel_matrix_matches_sequential_exactly() {
        let scenarios = vec![
            video::stationary().with_duration(SimDuration::from_secs(3)),
            video::slow_pan().with_duration(SimDuration::from_secs(3)),
        ];
        let variants = [SystemVariant::NoCache, SystemVariant::Full];
        let sequential = run_matrix(&scenarios, &variants, 5);
        let parallel = super::run_matrix_parallel(&scenarios, &variants, 5, 4);
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.variant, b.variant);
            assert_eq!(a.report.latencies_ms, b.report.latencies_ms);
            assert_eq!(a.report.path_counts, b.report.path_counts);
        }
    }

    #[test]
    fn capacity_sweep_is_geometric_and_inclusive() {
        assert_eq!(capacity_sweep(16, 256), vec![16, 32, 64, 128, 256]);
        assert_eq!(capacity_sweep(10, 100), vec![10, 20, 40, 80, 100]);
        assert_eq!(capacity_sweep(8, 8), vec![8]);
    }

    #[test]
    #[should_panic(expected = "need 0 < from <= to")]
    fn capacity_sweep_validates() {
        capacity_sweep(0, 8);
    }

    #[test]
    fn linear_sweep_hits_endpoints() {
        let v = linear_sweep(0.5, 2.5, 5);
        assert_eq!(v.len(), 5);
        assert!((v[0] - 0.5).abs() < 1e-12);
        assert!((v[4] - 2.5).abs() < 1e-12);
        assert!((v[2] - 1.5).abs() < 1e-12);
    }
}
