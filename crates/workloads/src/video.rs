//! Standard single-device video scenarios.
//!
//! These are the workloads the paper's intro motivates: a phone propped on
//! a stand (stationary), deliberately scanning a scene (slow pan), carried
//! through an environment (walking tour), inspecting exhibits
//! (turn-and-look), and a static camera over a changing scene (object
//! churn). Durations default to 30 simulated seconds at 10 fps; the
//! experiment binaries stretch them as needed.

use approxcache::{ChurnSpec, Scenario};
use imu::MotionProfile;
use simcore::SimDuration;

/// Phone propped still: the IMU fast path's best case.
pub fn stationary() -> Scenario {
    Scenario::single_device(MotionProfile::Stationary)
}

/// Smooth 10°/s scan across a scene: temporal locality with a steadily
/// advancing view.
pub fn slow_pan() -> Scenario {
    Scenario::single_device(MotionProfile::SlowPan { deg_per_sec: 10.0 }).with_name("slow-pan")
}

/// Walking at 1.4 m/s through the world: frequent subject changes, strong
/// motion — the hardest single-device case.
pub fn walking_tour() -> Scenario {
    Scenario::single_device(MotionProfile::Walking { speed_mps: 1.4 }).with_name("walking-tour")
}

/// Dwell on an exhibit for three seconds, then swing 45° to the next.
pub fn turn_and_look() -> Scenario {
    Scenario::single_device(MotionProfile::TurnAndLook {
        dwell_secs: 3.0,
        turn_deg: 45.0,
    })
    .with_name("turn-and-look")
}

/// Stationary camera over a scene where a quarter of the objects are
/// replaced every five seconds: bounds how long cached results stay valid.
pub fn object_churn() -> Scenario {
    Scenario::single_device(MotionProfile::Stationary)
        .with_name("object-churn")
        .with_churn(ChurnSpec {
            interval: SimDuration::from_secs(5),
            fraction: 0.25,
        })
}

/// The four scenarios of the headline experiment, easiest first.
pub fn headline_set() -> Vec<Scenario> {
    vec![stationary(), slow_pan(), turn_and_look(), walking_tour()]
}

/// Every named single-device scenario.
pub fn all() -> Vec<Scenario> {
    vec![
        stationary(),
        slow_pan(),
        turn_and_look(),
        walking_tour(),
        object_churn(),
    ]
}

#[cfg(test)]
// Tests compare exactly-constructed floats; exact equality is intentional.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_validate_and_have_unique_names() {
        let scenarios = all();
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        for s in &scenarios {
            s.validate().expect("scenario validates");
            assert_eq!(s.devices, 1);
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn churn_scenario_churns() {
        let s = object_churn();
        let churn = s.churn.expect("churn configured");
        assert_eq!(churn.fraction, 0.25);
        assert_eq!(churn.interval, SimDuration::from_secs(5));
        assert!(stationary().churn.is_none());
    }

    #[test]
    fn headline_set_is_a_subset_of_all() {
        let all_names: Vec<String> = all().into_iter().map(|s| s.name).collect();
        for s in headline_set() {
            assert!(all_names.contains(&s.name), "{} missing", s.name);
        }
    }
}
