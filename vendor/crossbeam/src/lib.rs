//! Offline API-compatible subset of `crossbeam`, backed by
//! `std::thread::scope` (available since Rust 1.63).

/// Scoped threads with the `crossbeam::thread` calling convention.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to [`scope`]'s closure and to each spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (for
        /// nested spawns), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let scope = Scope { inner: inner_scope };
                    f(&scope)
                }),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. Unlike std, returns `Err` (instead of
    /// propagating the panic) when the closure or an unjoined spawned
    /// thread panics — matching crossbeam's `.expect(..)` idiom.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|s| {
            let mid = data.len() / 2;
            let (lo, hi) = data.split_at(mid);
            let h1 = s.spawn(|_| lo.iter().sum::<u64>());
            let h2 = s.spawn(|_| hi.iter().sum::<u64>());
            h1.join().unwrap() + h2.join().unwrap()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn panicked_spawn_surfaces_as_err() {
        let result = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
