//! Offline API-compatible subset of `serde_json` for the vendored serde
//! stack: a recursive-descent JSON parser and compact/pretty printers
//! over the shared [`Value`] tree.

pub use serde::value::{Map, Number, Value};
use serde::{Deserialize, Serialize};

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// A specialized `Result` for JSON operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().render_compact())
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Builds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

/// Parses a `T` from JSON text.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let value = parse_value_complete(input)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn render_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                render_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                serde::value::render_string(k, out);
                out.push_str(": ");
                render_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.render_compact()),
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos - 1,
                        c as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos - 1,
                        c as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let first = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require a low surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let second = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(Error::new("invalid surrogate pair"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))?,
                        );
                    }
                    c => return Err(Error::new(format!("invalid escape `\\{}`", c as char))),
                },
                // Multi-byte UTF-8: pass the raw bytes through.
                b if b >= 0x80 => {
                    let start = self.pos - 1;
                    let width = utf8_width(b)?;
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                b if b < 0x20 => return Err(Error::new("unescaped control character in string")),
                b => out.push(b as char),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        let f = text
            .parse::<f64>()
            .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
        Ok(Value::Number(Number::F(f)))
    }
}

fn utf8_width(first: u8) -> Result<usize> {
    match first {
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err(Error::new("invalid UTF-8 lead byte")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
        assert_eq!(to_string(&3.5f64).unwrap(), "3.5");
    }

    #[test]
    fn float_round_trip_is_shortest() {
        let x = 0.1f64 + 0.2f64;
        let s = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), x);
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = from_str(r#"{"a": [1, 2.5, null], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v["a"][1], Value::Number(Number::F(2.5)));
        assert_eq!(v["b"]["c"].as_str(), Some("d"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A😀");
    }

    #[test]
    fn pretty_print_shape() {
        let v: Value = from_str(r#"{"a":[1],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1\n  ]"));
        assert!(pretty.contains("\"b\": {}"));
    }
}
