//! Offline API-compatible subset of `parking_lot`, backed by std locks.
//!
//! `parking_lot` locks are non-poisoning: `lock()` returns the guard
//! directly. The shim recovers from std poisoning to match.

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// The shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// The exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_recovers_from_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
