//! A minimal, self-contained subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few `rand` items it actually uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits and [`rngs::StdRng`]. Streams are
//! deterministic for a given seed (xoshiro256++ seeded via splitmix64)
//! but make no attempt to be bit-compatible with upstream `rand`; the
//! workspace only relies on determinism, never on specific values.

/// Error type for fallible RNG operations (never produced by this shim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
    /// Fallible [`RngCore::fill_bytes`]; this shim never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from its full domain (the
/// `Standard` distribution of upstream `rand`). Floats sample `[0, 1)`.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A value uniformly sampleable from a half-open or inclusive range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)` (`high` included when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                let span = if inclusive { span + 1 } else { span };
                assert!(span > 0, "gen_range: empty range");
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                let span = if inclusive { span + 1 } else { span };
                assert!(span > 0, "gen_range: empty range");
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                let v = low + (high - low) * unit;
                if v >= high { low } else { v }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience draws on top of [`RngCore`].
pub trait Rng: RngCore {
    /// A draw from the whole domain of `T` (floats: `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&x));
            let y = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
