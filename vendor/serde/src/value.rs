//! The JSON-shaped value tree shared by the vendored serde stack.

/// A JSON number, keeping integer identity where possible.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// An unsigned integer.
    U(u64),
    /// A signed integer.
    I(i64),
    /// A float.
    F(f64),
}

impl Number {
    /// The value as `f64` (always possible, may lose precision).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(n) => n as f64,
            Number::I(n) => n as f64,
            Number::F(n) => n,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(n) => Some(n),
            Number::I(n) => u64::try_from(n).ok(),
            Number::F(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            Number::F(_) => None,
        }
    }

    /// The value as `i64` when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(n) => i64::try_from(n).ok(),
            Number::I(n) => Some(n),
            Number::F(n) if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 => {
                Some(n as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self, other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            // Mixed or float comparisons go through f64 (serialization
            // and parsing may disagree about integer flavour).
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// An order-preserving string-keyed map of values.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable access to the value under `key`, if present.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Inserts or replaces `key`, returning the previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        match self.get_mut(&key) {
            Some(slot) => Some(std::mem::replace(slot, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Map) -> bool {
        // Key order is a serialization artifact, not part of the value.
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, when a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, when an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str`, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, when boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an object map, when an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array slice, when an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable access to the array, when an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable access to the object map, when an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compact single-line JSON rendering (used for non-string map keys;
    /// `serde_json` has the full pretty printer).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        render(self, &mut out);
        out
    }
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&render_number(*n)),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

/// Renders a number as shortest round-trip JSON.
pub fn render_number(n: Number) -> String {
    match n {
        Number::U(u) => u.to_string(),
        Number::I(i) => i.to_string(),
        Number::F(f) if f.is_finite() => {
            // Rust's Debug for f64 is the shortest representation that
            // round-trips; it is valid JSON except for integral values
            // ("1.0"), which JSON also accepts.
            format!("{f:?}")
        }
        // JSON cannot express NaN/infinities; match serde_json's null.
        Number::F(_) => "null".to_owned(),
    }
}

/// Renders a string with JSON escaping.
pub fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_value_from_num {
    ($($t:ty => $variant:ident as $repr:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::$variant(v as $repr))
            }
        }
    )*};
}
impl_value_from_num!(
    u8 => U as u64, u16 => U as u64, u32 => U as u64, u64 => U as u64,
    usize => U as u64,
    i8 => I as i64, i16 => I as i64, i32 => I as i64, i64 => I as i64,
    isize => I as i64,
    f32 => F as f64, f64 => F as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.as_object().and_then(|m| m.get(key)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Map::new());
        }
        let map = match self {
            Value::Object(m) => m,
            other => panic!("cannot index non-object value {other:?} by string"),
        };
        if map.get(key).is_none() {
            map.insert(key.to_owned(), Value::Null);
        }
        map.get_mut(key).expect("just inserted")
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_replaces_on_reinsert() {
        let mut m = Map::new();
        m.insert("a".into(), Value::Bool(true));
        let old = m.insert("a".into(), Value::Bool(false));
        assert_eq!(old, Some(Value::Bool(true)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("a"), Some(&Value::Bool(false)));
    }

    #[test]
    fn map_equality_ignores_order() {
        let mut a = Map::new();
        a.insert("x".into(), Value::Null);
        a.insert("y".into(), Value::Bool(true));
        let mut b = Map::new();
        b.insert("y".into(), Value::Bool(true));
        b.insert("x".into(), Value::Null);
        assert_eq!(Value::Object(a), Value::Object(b));
    }

    #[test]
    fn index_mut_creates_keys() {
        let mut v = Value::Object(Map::new());
        v["k"] = Value::Bool(true);
        assert_eq!(v["k"], Value::Bool(true));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn number_comparisons_cross_flavours() {
        assert_eq!(Number::U(4), Number::F(4.0));
        assert_eq!(Number::I(-1), Number::F(-1.0));
        assert!(Number::U(4) != Number::F(4.5));
    }
}
