//! A minimal, self-contained subset of the `serde` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a value-tree flavoured serde: [`Serialize`] lowers a type to a
//! [`Value`] and [`Deserialize`] rebuilds it. `serde_json` (also
//! vendored) renders that tree to JSON text and back. The data model is a
//! faithful subset of upstream serde's: structs become objects, newtype
//! structs are transparent, enums are externally tagged.
//!
//! The derive macros live in the vendored `serde_derive` and are
//! re-exported here, so `use serde::{Serialize, Deserialize}` works
//! exactly as with upstream serde.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Map, Number, Value};

/// Error produced while rebuilding a type from a [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> DeError {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can lower itself to a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the tree does not fit.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization-side helpers, mirroring upstream `serde::de`.
pub mod de {
    pub use crate::DeError as Error;

    /// A type deserializable without borrowing from the input.
    ///
    /// This shim has no zero-copy deserialization, so every
    /// [`Deserialize`](crate::Deserialize) type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::custom(format!(
                        "expected unsigned integer, got {v:?}"
                    )))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom(format!(
                        "expected integer, got {v:?}"
                    )))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // The shim cannot borrow from the transient `Value`, so static
        // string fields (short preset names in configs) are leaked.
        // Interning common cases keeps repeated round-trips bounded.
        let s = String::from_value(v)?;
        Ok(intern_static(s))
    }
}

fn intern_static(s: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    match set.get(s.as_str()) {
        Some(existing) => existing,
        None => {
            let leaked: &'static str = Box::leak(s.into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of {N} elements, got {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let tuple = ($(
                            {
                                let _ = $idx;
                                $name::from_value(it.next().ok_or_else(|| {
                                    DeError::custom("tuple too short")
                                })?)?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::custom("tuple too long"));
                        }
                        Ok(tuple)
                    }
                    other => Err(DeError::custom(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            let key = match k.to_value() {
                Value::String(s) => s,
                other => other.render_compact(),
            };
            map.insert(key, v.to_value());
        }
        Value::Object(map)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            let key = match k.to_value() {
                Value::String(s) => s,
                other => other.render_compact(),
            };
            map.insert(key, v.to_value());
        }
        Value::Object(map)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Codec for map keys, which JSON objects force to be strings.
pub trait MapKey: Sized {
    /// Renders the key as an object key.
    fn to_map_key(&self) -> String;
    /// Parses the key back from an object key.
    fn from_map_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_map_key(&self) -> String {
        self.clone()
    }

    fn from_map_key(key: &str) -> Result<String, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_map_key(&self) -> String {
                self.to_string()
            }

            fn from_map_key(key: &str) -> Result<$t, DeError> {
                key.parse().map_err(|_| {
                    DeError::custom(format!(
                        "invalid {} map key `{key}`", stringify!($t)))
                })
            }
        }
    )*};
}
impl_int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("HashMap: expected object"))?;
        obj.iter()
            .map(|(k, val)| Ok((K::from_map_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("BTreeMap: expected object"))?;
        obj.iter()
            .map(|(k, val)| Ok((K::from_map_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Derive-macro support (hidden from docs; not a public API)
// ---------------------------------------------------------------------

/// Fetches and deserializes a struct field from an object value.
#[doc(hidden)]
pub fn __field<T: Deserialize>(obj: &Map, ty: &str, name: &str) -> Result<T, DeError> {
    let v = obj
        .get(name)
        .ok_or_else(|| DeError::custom(format!("{ty}: missing field `{name}`")))?;
    T::from_value(v).map_err(|e| DeError::custom(format!("{ty}.{name}: {e}")))
}

/// Fetches and deserializes a struct field from an object value, falling
/// back to `Default::default()` when the key is absent (the derive's
/// `#[serde(default)]` support).
#[doc(hidden)]
pub fn __field_or_default<T: Deserialize + Default>(
    obj: &Map,
    ty: &str,
    name: &str,
) -> Result<T, DeError> {
    match obj.get(name) {
        None => Ok(T::default()),
        Some(v) => T::from_value(v).map_err(|e| DeError::custom(format!("{ty}.{name}: {e}"))),
    }
}

/// Interprets an externally tagged enum value as `(tag, payload)`.
#[doc(hidden)]
pub fn __enum_parts<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, Option<&'v Value>), DeError> {
    match v {
        Value::String(tag) => Ok((tag, None)),
        Value::Object(map) if map.len() == 1 => {
            let (tag, payload) = map.iter().next().expect("len checked");
            Ok((tag, Some(payload)))
        }
        other => Err(DeError::custom(format!(
            "{ty}: expected variant tag, got {other:?}"
        ))),
    }
}

/// Extracts the `n`-th element of a tuple-variant payload array.
#[doc(hidden)]
pub fn __tuple_elem<T: Deserialize>(
    v: &Value,
    ty: &str,
    n: usize,
    arity: usize,
) -> Result<T, DeError> {
    if arity == 1 && n == 0 {
        return T::from_value(v).map_err(|e| DeError::custom(format!("{ty}: {e}")));
    }
    match v {
        Value::Array(items) if items.len() == arity => {
            T::from_value(&items[n]).map_err(|e| DeError::custom(format!("{ty}[{n}]: {e}")))
        }
        other => Err(DeError::custom(format!(
            "{ty}: expected {arity}-element array, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_use_null() {
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Value::Number(Number::U(4))).unwrap(),
            Some(4)
        );
    }

    #[test]
    fn arrays_and_tuples_round_trip() {
        let arr = [1u64, 2, 3, 4];
        assert_eq!(<[u64; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let t = (1u32, 2.5f64, "x".to_string());
        assert_eq!(<(u32, f64, String)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn cross_type_numbers_deserialize() {
        // A JSON reader may produce I or F where a U is expected.
        assert_eq!(u64::from_value(&Value::Number(Number::I(4))).unwrap(), 4);
        assert_eq!(f64::from_value(&Value::Number(Number::U(4))).unwrap(), 4.0);
    }
}
