//! Derive macros for the vendored serde shim.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the value-tree data model of the vendored `serde` crate, with no
//! dependency on `syn`/`quote`: the item is parsed directly from the
//! `proc_macro` token stream (the workspace's types are plain structs and
//! externally-taggable enums, which keeps the grammar small).
//!
//! Supported shapes: unit/tuple/named structs, enums with unit, tuple and
//! struct variants, one level of type generics, and the field attributes
//! `#[serde(skip)]` (omitted on serialize, `Default::default()` on
//! deserialize), `#[serde(rename = "...")]` (the string replaces the
//! field name as the object key in both directions),
//! `#[serde(default)]` (a missing key deserializes as
//! `Default::default()` instead of erroring), and
//! `#[serde(skip_serializing_if = "path")]` (the field is omitted from
//! the serialized object when `path(&field)` is true). Container-level
//! `#[serde(transparent)]` needs no handling: single-field tuple structs
//! already serialize as their inner value.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: Option<String>,
    skip: bool,
    rename: Option<String>,
    default: bool,
    skip_serializing_if: Option<String>,
}

impl Field {
    /// The object key this field reads from / writes to.
    fn key(&self) -> &str {
        self.rename
            .as_deref()
            .or(self.name.as_deref())
            .expect("named field")
    }
}

#[derive(Debug)]
enum Body {
    UnitStruct,
    TupleStruct(Vec<Field>),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Item {
    name: String,
    type_params: Vec<String>,
    body: Body,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    pos += 1;

    let type_params = parse_generics(&tokens, &mut pos);

    // Skip a `where` clause if present (none of the workspace's derived
    // types have one, but be tolerant).
    if matches!(&tokens.get(pos), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        while pos < tokens.len() && !matches!(&tokens[pos], TokenTree::Group(_)) {
            pos += 1;
        }
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            None | Some(TokenTree::Punct(_)) => Body::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            other => panic!("unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };

    Item {
        name,
        type_params,
        body,
    }
}

/// The `#[serde(...)]` field attributes this shim understands.
#[derive(Debug, Default)]
struct FieldAttrs {
    skip: bool,
    rename: Option<String>,
    default: bool,
    skip_serializing_if: Option<String>,
}

/// Advances past leading `#[...]` attributes, collecting any recognized
/// `#[serde(...)]` field attributes along the way.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    loop {
        match (tokens.get(*pos), tokens.get(*pos + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                merge_serde_attr(g.stream(), &mut attrs);
                *pos += 2;
            }
            _ => return attrs,
        }
    }
}

/// Folds one `#[...]` attribute body into `attrs`: recognizes
/// `serde(skip)`, `serde(rename = "...")`, `serde(default)` and
/// `serde(skip_serializing_if = "...")`; anything else is ignored.
fn merge_serde_attr(stream: TokenStream, attrs: &mut FieldAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let inner = match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => {
            g.stream().into_iter().collect::<Vec<TokenTree>>()
        }
        _ => return,
    };
    for (i, t) in inner.iter().enumerate() {
        match t {
            TokenTree::Ident(id) if id.to_string() == "skip" => attrs.skip = true,
            TokenTree::Ident(id) if id.to_string() == "default" => attrs.default = true,
            TokenTree::Ident(id) if id.to_string() == "rename" => {
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (inner.get(i + 1), inner.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        attrs.rename = Some(lit.to_string().trim_matches('"').to_owned());
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "skip_serializing_if" => {
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (inner.get(i + 1), inner.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        attrs.skip_serializing_if =
                            Some(lit.to_string().trim_matches('"').to_owned());
                    }
                }
            }
            _ => {}
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

/// Parses `<...>` after the type name, returning the type-parameter
/// idents (lifetimes and bounds are skipped).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(&tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut expecting_param = true;
    let mut in_lifetime = false;
    while *pos < tokens.len() && depth > 0 {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                expecting_param = true;
                in_lifetime = false;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' => in_lifetime = true,
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => expecting_param = false,
            TokenTree::Ident(id) if depth == 1 && expecting_param => {
                if in_lifetime {
                    in_lifetime = false;
                } else if id.to_string() == "const" {
                    // const generics unsupported in derived types.
                } else {
                    params.push(id.to_string());
                    expecting_param = false;
                }
            }
            _ => {}
        }
        *pos += 1;
    }
    params
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        pos += 1;
        assert!(
            matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        pos += 1;
        skip_type(&tokens, &mut pos);
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        fields.push(Field {
            name: Some(name),
            skip: attrs.skip,
            rename: attrs.rename,
            default: attrs.default,
            skip_serializing_if: attrs.skip_serializing_if,
        });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        fields.push(Field {
            name: None,
            skip: attrs.skip,
            rename: None,
            default: attrs.default,
            skip_serializing_if: None,
        });
    }
    fields
}

/// Advances past one type, stopping at a top-level `,` (angle-bracket
/// depth aware; `(...)`, `[...]` arrive as atomic groups).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0usize;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other}"),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantFields::Tuple(parse_tuple_fields(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while pos < tokens.len()
                && !matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',')
            {
                pos += 1;
            }
        }
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.type_params.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        let bounded: Vec<String> = item
            .type_params
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect();
        let plain = item.type_params.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{}>",
            bounded.join(", "),
            item.name,
            plain
        )
    }
}

fn emit_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => "::serde::Value::Null".to_owned(),
        Body::TupleStruct(fields) => {
            let live: Vec<usize> = (0..fields.len()).filter(|&i| !fields[i].skip).collect();
            if live.len() == 1 {
                format!("::serde::Serialize::to_value(&self.{})", live[0])
            } else {
                let items: Vec<String> = live
                    .iter()
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
        Body::NamedStruct(fields) => emit_named_to_object(fields, "self.", ""),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_owned()),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_owned()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => {{ \
                                   let mut __m = ::serde::Map::new(); \
                                   __m.insert(\"{vname}\".to_owned(), {payload}); \
                                   ::serde::Value::Object(__m) \
                                 }},",
                                binds.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds: Vec<String> = fields
                                .iter()
                                .map(|f| f.name.clone().expect("named"))
                                .collect();
                            let payload = emit_named_to_object(fields, "", "__v_");
                            let renames: Vec<String> =
                                binds.iter().map(|b| format!("{b}: __v_{b}")).collect();
                            format!(
                                "{name}::{vname} {{ {} }} => {{ \
                                   let mut __m = ::serde::Map::new(); \
                                   __m.insert(\"{vname}\".to_owned(), {payload}); \
                                   ::serde::Value::Object(__m) \
                                 }},",
                                renames.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "Serialize")
    )
}

/// Builds a `Value::Object` expression from named fields, reading each
/// field as `{access}{prefix}{field}` (skip fields omitted).
fn emit_named_to_object(fields: &[Field], access: &str, prefix: &str) -> String {
    let mut out = String::from("{ let mut __map = ::serde::Map::new(); ");
    for f in fields {
        if f.skip {
            continue;
        }
        let fname = f.name.as_ref().expect("named field");
        let key = f.key();
        let insert = format!(
            "__map.insert(\"{key}\".to_owned(), \
             ::serde::Serialize::to_value(&{access}{prefix}{fname})); "
        );
        match &f.skip_serializing_if {
            Some(pred) => out.push_str(&format!(
                "if !{pred}(&{access}{prefix}{fname}) {{ {insert} }} "
            )),
            None => out.push_str(&insert),
        }
    }
    out.push_str("::serde::Value::Object(__map) }");
    out
}

fn emit_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => format!("{{ let _ = __v; Ok({name}) }}"),
        Body::TupleStruct(fields) => {
            let live: Vec<usize> = (0..fields.len()).filter(|&i| !fields[i].skip).collect();
            let arity = live.len();
            let mut args: Vec<String> = Vec::new();
            let mut live_seen = 0usize;
            for (i, f) in fields.iter().enumerate() {
                if f.skip {
                    args.push("::std::default::Default::default()".to_owned());
                } else {
                    let _ = i;
                    args.push(format!(
                        "::serde::__tuple_elem(__v, \"{name}\", {live_seen}, {arity})?"
                    ));
                    live_seen += 1;
                }
            }
            format!("Ok({name}({}))", args.join(", "))
        }
        Body::NamedStruct(fields) => {
            let inits = emit_named_inits(fields, name);
            format!(
                "{{ let __obj = __v.as_object().ok_or_else(|| \
                   ::serde::DeError::custom(\"{name}: expected object\"))?; \
                   Ok({name} {{ {inits} }}) }}"
            )
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => {
                            format!("\"{vname}\" => Ok({name}::{vname}),")
                        }
                        VariantFields::Tuple(n) => {
                            let args: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::__tuple_elem(__p, \
                                         \"{name}::{vname}\", {i}, {n})?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{ \
                                   let __p = __payload.ok_or_else(|| \
                                     ::serde::DeError::custom(\
                                       \"{name}::{vname}: missing payload\"))?; \
                                   Ok({name}::{vname}({})) \
                                 }},",
                                args.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let inits = emit_named_inits(fields, &format!("{name}::{vname}"));
                            format!(
                                "\"{vname}\" => {{ \
                                   let __p = __payload.ok_or_else(|| \
                                     ::serde::DeError::custom(\
                                       \"{name}::{vname}: missing payload\"))?; \
                                   let __obj = __p.as_object().ok_or_else(|| \
                                     ::serde::DeError::custom(\
                                       \"{name}::{vname}: expected object\"))?; \
                                   Ok({name}::{vname} {{ {inits} }}) \
                                 }},",
                            )
                        }
                    }
                })
                .collect();
            format!(
                "{{ let (__tag, __payload) = ::serde::__enum_parts(__v, \"{name}\")?; \
                   match __tag {{ {} __other => Err(::serde::DeError::custom(format!(\
                     \"{name}: unknown variant `{{}}`\", __other))) }} }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "{} {{ fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}",
        impl_header(item, "Deserialize")
    )
}

fn emit_named_inits(fields: &[Field], ty: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fname = f.name.as_ref().expect("named field");
            if f.skip {
                format!("{fname}: ::std::default::Default::default()")
            } else if f.default {
                let key = f.key();
                format!("{fname}: ::serde::__field_or_default(__obj, \"{ty}\", \"{key}\")?")
            } else {
                let key = f.key();
                format!("{fname}: ::serde::__field(__obj, \"{ty}\", \"{key}\")?")
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}
