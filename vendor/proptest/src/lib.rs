//! Offline API-compatible subset of `proptest`.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case is reported with its generated
//!   input verbatim; pin interesting inputs with explicit unit tests.
//! - **Deterministic seeds.** Each test derives its RNG seed from its
//!   module path + name, so runs are reproducible without persistence;
//!   `proptest-regressions/` files are ignored (their `cc` hashes are
//!   upstream RNG seeds that cannot be replayed here).
//! - Numeric range strategies bias ~10% of cases to the low boundary so
//!   edge values (e.g. a 0.0 distance) are exercised reliably.

pub mod strategy;

/// Runner configuration and error types.
pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property failed; the run fails.
        Fail(String),
        /// The case was rejected by `prop_assume!`; it is discarded.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(message.into())
        }

        /// A rejection (discard) with the given message.
        pub fn reject(message: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(message.into())
        }
    }

    /// The deterministic generator RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from `seed`.
        pub fn seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`; `n` must be nonzero.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index over empty range");
            (self.next_u64() % n as u64) as usize
        }

        /// True with probability `p`.
        pub fn chance(&mut self, p: f64) -> bool {
            self.unit_f64() < p
        }
    }

    /// Runs a strategy/test pair for a configured number of cases.
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner for the named test, seeded from the name.
        pub fn new(config: ProptestConfig, name: &'static str) -> TestRunner {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner {
                config,
                name,
                rng: TestRng::seed(seed),
            }
        }

        /// Runs up to `cases` accepted cases, panicking on the first
        /// failure (with the offending input). Rejections are discarded,
        /// bounded by a global attempt cap so `prop_assume!`-heavy tests
        /// terminate.
        pub fn run<S, F>(&mut self, strategy: &S, test: F)
        where
            S: crate::strategy::Strategy,
            F: Fn(S::Value) -> Result<(), TestCaseError>,
        {
            let max_attempts = self.config.cases as u64 * 8 + 64;
            let mut accepted = 0u32;
            let mut attempts = 0u64;
            while accepted < self.config.cases && attempts < max_attempts {
                attempts += 1;
                let value = strategy.generate(&mut self.rng);
                let desc = format!("{value:?}");
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
                match outcome {
                    Ok(Ok(())) => accepted += 1,
                    Ok(Err(TestCaseError::Reject(_))) => {}
                    Ok(Err(TestCaseError::Fail(msg))) => panic!(
                        "proptest `{}` failed at case {} with input {}\n{}",
                        self.name, accepted, desc, msg
                    ),
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".to_owned());
                        panic!(
                            "proptest `{}` panicked at case {} with input {}\n{}",
                            self.name, accepted, desc, msg
                        );
                    }
                }
            }
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + rng.index(span.max(1)).min(span.saturating_sub(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of an inner strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.chance(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Types for `any::<T>()`.
pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: std::fmt::Debug {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let mag = rng.unit_f64() * 1e9;
            if rng.chance(0.5) {
                -mag
            } else {
                mag
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }
}

/// Everything a `proptest!` test module needs.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(expr)]` header and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal muncher for [`proptest!`]; one generated fn per item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new(
                $config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategy = ($($strat,)+);
            runner.run(&strategy, |values| {
                let ($($pat,)+) = values;
                $body
                Ok(())
            });
        }
        $crate::__proptest_items!(($config); $($rest)*);
    };
}

/// Asserts inside a proptest body, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                left, right
            )));
        }
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Picks uniformly among the given strategies (all must share a value
/// type). Weighted arms are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
