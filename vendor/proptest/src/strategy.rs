//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of values for property tests (no shrinking in the shim).
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The combinator returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy handle.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice among same-typed strategies ([`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.index(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// --- Numeric ranges --------------------------------------------------
//
// `lo..hi` is itself a strategy. ~10% of draws pin the low boundary so
// edge values (0.0 distances, empty budgets) show up reliably; the rest
// are uniform over the range.

const LOW_EDGE_BIAS: f64 = 0.10;

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                if rng.chance(LOW_EDGE_BIAS) {
                    return self.start;
                }
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                if rng.chance(LOW_EDGE_BIAS) {
                    return self.start;
                }
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                // Floating rounding can land exactly on `end`; stay inside.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// --- Tuples ----------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed(42)
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_low_edge() {
        let mut r = rng();
        let s = 0.0f64..3.0;
        let mut saw_zero = false;
        for _ in 0..500 {
            let v = s.generate(&mut r);
            assert!((0.0..3.0).contains(&v));
            saw_zero |= v == 0.0;
        }
        assert!(saw_zero, "low-boundary bias should produce exact 0.0");

        let s = 0u8..4;
        for _ in 0..200 {
            assert!(s.generate(&mut r) < 4);
        }
        let s = -50.0f32..50.0;
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((-50.0..50.0).contains(&v));
        }
    }

    #[test]
    fn oneof_union_uses_every_arm() {
        let u = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_and_map_compose() {
        let s = crate::collection::vec((0.0f64..1.0, 0u8..4), 1..12).prop_map(|v| v.len());
        let mut r = rng();
        for _ in 0..100 {
            let n = s.generate(&mut r);
            assert!((1..12).contains(&n));
        }
    }
}
