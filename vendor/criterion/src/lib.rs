//! Offline API-compatible subset of `criterion`: a minimal wall-clock
//! benchmark harness with the same calling convention. It runs each
//! benchmark for a fixed sample count, prints mean per-iteration time,
//! and does no statistical analysis or HTML reporting.

use std::time::{Duration, Instant};

/// Identifies a parameterized benchmark (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.full)
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: u32,
    /// Mean per-iteration duration of the last `iter` call.
    last_mean: Duration,
}

impl Bencher {
    /// Times `routine`, running enough iterations per sample to get a
    /// stable mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the inner loop so one sample is ~1ms.
        let warmup = Instant::now();
        std::hint::black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(10));
        let per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iters += per_sample as u64;
        }
        self.last_mean = total / iters.max(1) as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    samples: u32,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u32;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            last_mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "{}/{:<40} {:>12.3?}/iter",
            self.name,
            id.to_string(),
            bencher.last_mean
        );
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            last_mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        println!(
            "{}/{:<40} {:>12.3?}/iter",
            self.name,
            id.to_string(),
            bencher.last_mean
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            samples: 30,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Prevents the optimizer from discarding a value (same contract as
/// `std::hint::black_box`, re-exported for API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
