//! Offline API-compatible subset of `bytes`: `Bytes`/`BytesMut`
//! containers plus the `Buf`/`BufMut` cursor traits, little-endian
//! accessors only (the wire protocol in this workspace is LE).

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, where each
/// `get_*` advances the slice in place.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing. Panics if short.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.get_u64_le().to_le_bytes())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write cursor used by the encoders; implemented for [`BytesMut`].
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u64_le(42);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 0x1234);
        assert_eq!(cursor.get_u32_le(), 0xDEADBEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.get_f64_le(), -2.25);
        let mut tail = [0u8; 3];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&*c, b"hello");
    }
}
