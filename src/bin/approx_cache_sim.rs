//! `approx-cache-sim` — command-line simulation runner.
//!
//! ```sh
//! cargo run --release --bin approx_cache_sim -- --scenario museum --devices 8 \
//!     --variant full --seconds 30 --seed 7
//! ```
//!
//! Prints the run report; `--json <path>` additionally writes the raw
//! report for post-processing.

use std::process::ExitCode;

use approx_caching::inertial::MotionProfile;
use approx_caching::runtime::SimDuration;
use approx_caching::system::{run, Detail, PipelineConfig, Scenario, SystemVariant};
use approx_caching::workload::{multi, trace, video};

const USAGE: &str = "\
approx-cache-sim — approximate-caching simulation runner

USAGE:
  approx_cache_sim [OPTIONS]

OPTIONS:
  --scenario <name>   stationary | slow-pan | walking | turn-and-look |
                      object-churn | museum | campus        [default: slow-pan]
  --variant <name>    no-cache | exact-cache | local-approx | no-imu |
                      no-peer | no-temporal | full           [default: full]
  --devices <n>       device count (museum/campus only)      [default: 1]
  --seconds <n>       simulated stream length                [default: 30]
  --fps <n>           camera frame rate                      [default: 10]
  --seed <n>          master seed                            [default: 42]
  --model <name>      squeezenet | mobilenet_v2 | resnet50 | inception_v3
                                                             [default: mobilenet_v2]
  --json <path>       also write the raw report as JSON
  --help              print this help
";

struct Args {
    scenario: String,
    variant: String,
    devices: usize,
    seconds: u64,
    fps: f64,
    seed: u64,
    model: String,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: "slow-pan".into(),
        variant: "full".into(),
        devices: 1,
        seconds: 30,
        fps: 10.0,
        seed: 42,
        model: "mobilenet_v2".into(),
        json: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--scenario" => args.scenario = value,
            "--variant" => args.variant = value,
            "--devices" => {
                args.devices = value
                    .parse()
                    .map_err(|_| format!("bad --devices: {value}"))?
            }
            "--seconds" => {
                args.seconds = value
                    .parse()
                    .map_err(|_| format!("bad --seconds: {value}"))?
            }
            "--fps" => args.fps = value.parse().map_err(|_| format!("bad --fps: {value}"))?,
            "--seed" => args.seed = value.parse().map_err(|_| format!("bad --seed: {value}"))?,
            "--model" => args.model = value,
            "--json" => args.json = Some(value),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    Ok(args)
}

fn scenario_by_name(name: &str, devices: usize) -> Result<Scenario, String> {
    let scenario = match name {
        "stationary" => video::stationary(),
        "slow-pan" => video::slow_pan(),
        "walking" => video::walking_tour(),
        "turn-and-look" => video::turn_and_look(),
        "object-churn" => video::object_churn(),
        "museum" => multi::museum(devices.max(1)),
        "campus" => multi::campus(devices.max(1)),
        "handheld" => Scenario::single_device(MotionProfile::HandheldJitter).with_name("handheld"),
        other => return Err(format!("unknown scenario: {other}")),
    };
    if devices > 1 && scenario.devices == 1 {
        return Err(format!(
            "scenario {name} is single-device; use museum or campus"
        ));
    }
    Ok(scenario)
}

fn variant_by_name(name: &str) -> Result<SystemVariant, String> {
    Ok(match name {
        "no-cache" => SystemVariant::NoCache,
        "exact-cache" => SystemVariant::ExactCache,
        "local-approx" => SystemVariant::LocalApprox,
        "no-imu" => SystemVariant::NoImu,
        "no-peer" => SystemVariant::NoPeer,
        "no-temporal" => SystemVariant::NoTemporal,
        "full" => SystemVariant::Full,
        other => return Err(format!("unknown variant: {other}")),
    })
}

fn model_by_name(name: &str) -> Result<dnnsim::ModelProfile, String> {
    dnnsim::zoo::all()
        .into_iter()
        .find(|m| m.name == name)
        .ok_or_else(|| format!("unknown model: {name}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            eprint!("{USAGE}");
            return if message.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    let result = (|| -> Result<(), String> {
        let scenario = scenario_by_name(&args.scenario, args.devices)?
            .with_duration(SimDuration::from_secs(args.seconds.max(1)))
            .with_fps(args.fps);
        let variant = variant_by_name(&args.variant)?;
        let model = model_by_name(&args.model)?;
        let config = PipelineConfig::calibrated(&scenario, args.seed).with_model(model);

        eprintln!(
            "running {} / {} for {}s at {} fps (seed {})…",
            scenario.name, variant, args.seconds, args.fps, args.seed
        );
        let report = run(&scenario, &config, variant, args.seed, Detail::Summary)
            .map_err(|e| e.to_string())?
            .report;
        println!("{report}");
        println!(
            "battery: {:.1}%/hour of continuous streaming (15.4 Wh battery)",
            report.battery_pct_per_hour(15_400.0)
        );
        if let Some(path) = &args.json {
            trace::save_report(&report, path).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        Ok(())
    })();

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
