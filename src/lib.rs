//! Approximate caching for mobile image recognition — umbrella crate.
//!
//! A reproduction of *"Poster: Approximate Caching for Mobile Image
//! Recognition"* (Mariani, Han & Xiao, ICDCS 2021): an in-memory caching
//! paradigm that reuses image-recognition results instead of re-running
//! the DNN, exploiting the inertial movement of smartphones, the locality
//! of video streams, and nearby peer-to-peer devices.
//!
//! This crate re-exports the whole workspace so applications can depend
//! on one name:
//!
//! | Module | Contents |
//! |---|---|
//! | [`system`] | The pipeline, baselines, simulator and reports (`approxcache`) |
//! | [`cache`] | The approximate cache data structure (`reuse`) |
//! | [`search`] | Nearest-neighbour indexes and the A-kNN hit test (`ann`) |
//! | [`keys`] | Feature vectors, projections, hashes (`features`) |
//! | [`inertial`] | IMU synthesis, estimation and gating (`imu`) |
//! | [`vision`] | The synthetic visual world (`scene`) |
//! | [`inference`] | The mobile DNN simulator (`dnnsim`) |
//! | [`network`] | Infrastructure-less peer networking (`p2pnet`) |
//! | [`edge`] | The optional edge cache tier: wire protocol, shared cache, HTTP server (`edge`) |
//! | [`workload`] | Named scenarios and sweeps (`workloads`) |
//! | [`runtime`] | Simulation substrate: time, RNG, metrics (`simcore`) |
//!
//! # Quickstart
//!
//! ```
//! use approx_caching::system::{run, Detail, PipelineConfig, SystemVariant};
//! use approx_caching::workload::video;
//! use approx_caching::runtime::SimDuration;
//!
//! let scenario = video::stationary().with_duration(SimDuration::from_secs(5));
//! let config = PipelineConfig::calibrated(&scenario, 42);
//! let baseline = run(&scenario, &config, SystemVariant::NoCache, 42, Detail::Summary)
//!     .expect("valid scenario")
//!     .report;
//! let full = run(&scenario, &config, SystemVariant::Full, 42, Detail::Summary)
//!     .expect("valid scenario")
//!     .report;
//! assert!(full.latency_ms.mean < baseline.latency_ms.mean);
//! ```

/// Nearest-neighbour indexes and the adaptive k-NN hit test.
pub use ann as search;
/// The pipeline, baselines, simulator and reports.
pub use approxcache as system;
/// The mobile DNN inference simulator.
pub use dnnsim as inference;
/// The optional edge cache tier: batched wire protocol, the shared
/// `EdgeCache` service, and the threaded HTTP server/client.
pub use edge;
/// Feature vectors, random projections and perceptual hashes.
pub use features as keys;
/// IMU trace synthesis, motion estimation and the reuse gate.
pub use imu as inertial;
/// Infrastructure-less peer-to-peer networking.
pub use p2pnet as network;
/// The approximate cache data structure.
pub use reuse as cache;
/// The synthetic visual world.
pub use scene as vision;
/// Simulation substrate: virtual time, seeded RNG, metrics, tables.
pub use simcore as runtime;
/// Named scenarios, sweeps and persistence.
pub use workloads as workload;
