//! Integration tests for cross-device collaboration mechanics.

use approx_caching::cache::{ApproxCache, CacheConfig, EntrySource, LookupResult};
use approx_caching::keys::FeatureVector;
use approx_caching::network::{LinkSpec, P2pMessage, Transport, WireEntry};
use approx_caching::runtime::{SimRng, SimTime};
use approx_caching::vision::ClassId;

// Kept in seed formatting.
#[rustfmt::skip]
#[test]
fn wire_protocol_carries_cache_entries_between_caches() {
    // Device A caches a result, serializes it, "sends" it through the
    // transport, and device B admits it — the advertisement path end to
    // end, without the simulator in the way.
    let mut a: ApproxCache<ClassId> = ApproxCache::new(CacheConfig::new(16));
    let key = FeatureVector::from_vec(vec![0.5; 64]).unwrap();
    a.insert(key.clone(), ClassId(7), 0.92, EntrySource::LocalInference, SimTime::ZERO);
    let entry = a.hottest(1)[0];

    let message = P2pMessage::Advertise {
        entries: vec![WireEntry {
            key: entry.key.clone(),
            label: entry.label.0,
            confidence: entry.confidence,
        }],
    };
    let encoded = message.encode();

    let mut transport = Transport::new(LinkSpec::wifi_direct());
    let mut rng = SimRng::seed(1);
    let delay = transport.send_one_way(encoded.len(), &mut rng);
    assert!(delay.is_some());

    let decoded = P2pMessage::decode(&encoded).unwrap();
    let P2pMessage::Advertise { entries } = decoded else {
        panic!("wrong message type");
    };
    let mut b: ApproxCache<ClassId> = ApproxCache::new(CacheConfig::new(16));
    let received = &entries[0];
    b.insert(
        received.key.clone(),
        ClassId(received.label),
        received.confidence,
        EntrySource::Peer,
        SimTime::from_millis(10),
    );
    let hit = b.lookup(&key, SimTime::from_millis(20));
    assert_eq!(hit.label(), Some(&ClassId(7)));
}

// Kept in seed formatting.
#[rustfmt::skip]
#[test]
fn peer_entries_respect_stricter_admission() {
    let mut cache: ApproxCache<ClassId> = ApproxCache::new(CacheConfig::new(16));
    let key = FeatureVector::from_vec(vec![1.0; 8]).unwrap();
    // Default peer floor is 0.8: a 0.77-confidence peer entry is refused,
    // the same result from local inference is accepted.
    let refused = cache.insert(key.clone(), ClassId(1), 0.77, EntrySource::Peer, SimTime::ZERO);
    assert_eq!(refused, approx_caching::cache::InsertOutcome::Rejected);
    let accepted = cache.insert(key, ClassId(1), 0.77, EntrySource::LocalInference, SimTime::ZERO);
    assert!(matches!(accepted, approx_caching::cache::InsertOutcome::Inserted(_)));
}

// Kept in seed formatting.
#[rustfmt::skip]
#[test]
fn query_reply_round_trip_over_lossy_link() {
    // A full query/reply exchange: the querying side encodes, the remote
    // cache answers, the reply decodes — with transport loss handled.
    let mut remote: ApproxCache<ClassId> = ApproxCache::new(CacheConfig::new(16));
    let key = FeatureVector::from_vec(vec![2.0; 32]).unwrap();
    remote.insert(key.clone(), ClassId(3), 0.9, EntrySource::LocalInference, SimTime::ZERO);

    let query = P2pMessage::Query {
        query_id: 99,
        key: key.clone(),
    };
    let decoded = P2pMessage::decode(&query.encode()).unwrap();
    let P2pMessage::Query { query_id, key: remote_key } = decoded else {
        panic!("wrong message type");
    };
    assert_eq!(query_id, 99);

    let hit = match remote.lookup(&remote_key, SimTime::from_millis(5)) {
        LookupResult::Hit { label, nearest_distance, .. } => Some(approx_caching::network::RemoteHit {
            label: label.0,
            confidence: 0.9,
            distance: nearest_distance,
        }),
        LookupResult::Miss(_) => None,
    };
    let reply = P2pMessage::Reply { query_id, hit };
    let reply_decoded = P2pMessage::decode(&reply.encode()).unwrap();
    let P2pMessage::Reply { hit: Some(h), .. } = reply_decoded else {
        panic!("expected a hit reply");
    };
    assert_eq!(h.label, 3);
    assert!(h.distance < 1e-6);

    // Lossy transport: over many exchanges some fail, and the failure rate
    // matches the link spec.
    let lossy = LinkSpec {
        loss_prob: 0.2,
        ..LinkSpec::ble()
    };
    let mut transport = Transport::new(lossy);
    let mut rng = SimRng::seed(7);
    let mut failures = 0;
    for _ in 0..2_000 {
        if transport
            .round_trip(query.encoded_len(), reply.encoded_len(), &mut rng)
            .is_none()
        {
            failures += 1;
        }
    }
    let rate = failures as f64 / 2_000.0;
    assert!((rate - 0.36).abs() < 0.05, "round-trip failure rate {rate}");
}

// Kept in seed formatting.
#[rustfmt::skip]
#[test]
fn shared_projection_makes_keys_compatible_across_devices() {
    // Two devices must produce identical keys for identical frames, or
    // peer lookups would compare apples to oranges.
    use approx_caching::keys::RandomProjection;
    let mut rng = SimRng::seed(11);
    let descriptor =
        FeatureVector::from_vec((0..256).map(|_| rng.uniform(-1.0, 1.0) as f32).collect())
            .unwrap();
    let device_a = RandomProjection::new(256, 64, 0xcafe);
    let device_b = RandomProjection::new(256, 64, 0xcafe);
    assert_eq!(device_a.project(&descriptor), device_b.project(&descriptor));
}
