//! Cross-crate integration tests: the full pipeline over real scenarios.

use approx_caching::runtime::SimDuration;
#[rustfmt::skip]
use approx_caching::system::{
    run, Detail, PipelineConfig, ResolutionPath, RunReport, Scenario, SystemVariant,
};
use approx_caching::workload::{multi, video};

fn run_summary(
    scenario: &Scenario,
    config: &PipelineConfig,
    variant: SystemVariant,
    seed: u64,
) -> RunReport {
    run(scenario, config, variant, seed, Detail::Summary)
        .expect("valid scenario")
        .report
}

fn quick(scenario: approx_caching::system::Scenario) -> approx_caching::system::Scenario {
    scenario.with_duration(SimDuration::from_secs(10))
}

// Kept in seed formatting.
#[rustfmt::skip]
#[test]
fn full_system_beats_no_cache_on_every_reuse_friendly_scenario() {
    for scenario in [video::stationary(), video::slow_pan(), video::turn_and_look()] {
        let scenario = quick(scenario);
        let config = PipelineConfig::calibrated(&scenario, 21);
        let base = run_summary(&scenario, &config, SystemVariant::NoCache, 21);
        let full = run_summary(&scenario, &config, SystemVariant::Full, 21);
        let reduction = full.latency_reduction_vs(&base);
        assert!(
            reduction > 0.5,
            "{}: latency reduction only {:.1}%",
            scenario.name,
            reduction * 100.0
        );
    }
}

#[test]
fn accuracy_loss_stays_minimal() {
    // The abstract's second claim: "minimal loss of recognition accuracy".
    // Confidence-gated admission can even make cached results *better*
    // than per-frame inference; we assert the delta never drops below a
    // few points on any standard scenario.
    for scenario in video::headline_set() {
        let scenario = quick(scenario);
        let config = PipelineConfig::calibrated(&scenario, 22);
        let base = run_summary(&scenario, &config, SystemVariant::NoCache, 22);
        let full = run_summary(&scenario, &config, SystemVariant::Full, 22);
        let delta = full.accuracy_delta_vs(&base);
        assert!(
            delta > -0.05,
            "{}: accuracy delta {:.1} points",
            scenario.name,
            delta * 100.0
        );
    }
}

#[test]
fn exact_cache_barely_reuses() {
    // The motivating observation: conventional exact-match caching cannot
    // absorb sensor noise, so it reuses (nearly) nothing.
    let scenario = quick(video::slow_pan());
    let config = PipelineConfig::calibrated(&scenario, 23);
    let exact = run_summary(&scenario, &config, SystemVariant::ExactCache, 23);
    let full = run_summary(&scenario, &config, SystemVariant::Full, 23);
    assert!(
        exact.reuse_rate() < 0.05,
        "exact cache reused {:.1}%",
        exact.reuse_rate() * 100.0
    );
    assert!(full.reuse_rate() > 0.5);
}

#[test]
fn baseline_ordering_holds_in_the_museum() {
    // NoCache slowest; adding local reuse helps; adding peers helps more
    // (or at least never hurts) in a shared-world scenario.
    let scenario = multi::museum(6).with_duration(SimDuration::from_secs(10));
    let config = PipelineConfig::calibrated(&scenario, 24);
    let no_cache = run_summary(&scenario, &config, SystemVariant::NoCache, 24);
    let local = run_summary(&scenario, &config, SystemVariant::LocalApprox, 24);
    let full = run_summary(&scenario, &config, SystemVariant::Full, 24);
    assert!(local.latency_ms.mean < no_cache.latency_ms.mean);
    assert!(full.latency_ms.mean <= local.latency_ms.mean * 1.1);
    assert!(full.path_fraction(ResolutionPath::PeerCache) > 0.0);
}

#[test]
// Exact comparison is intentional: zero peer hits yields exactly 0.0.
#[allow(clippy::float_cmp)]
fn peer_traffic_only_flows_when_peers_enabled() {
    let scenario = multi::museum(4).with_duration(SimDuration::from_secs(6));
    let config = PipelineConfig::calibrated(&scenario, 25);
    let full = run_summary(&scenario, &config, SystemVariant::Full, 25);
    let solo = run_summary(&scenario, &config, SystemVariant::NoPeer, 25);
    assert!(full.network.bytes_sent > 0);
    assert_eq!(solo.network.bytes_sent, 0);
    assert_eq!(solo.path_fraction(ResolutionPath::PeerCache), 0.0);
}

#[test]
fn whole_runs_are_reproducible_from_the_seed() {
    let scenario = multi::museum(3).with_duration(SimDuration::from_secs(6));
    let config = PipelineConfig::calibrated(&scenario, 26);
    let a = run_summary(&scenario, &config, SystemVariant::Full, 26);
    let b = run_summary(&scenario, &config, SystemVariant::Full, 26);
    assert_eq!(a.latencies_ms, b.latencies_ms);
    assert_eq!(a.path_counts, b.path_counts);
    assert_eq!(a.network, b.network);
    assert_eq!(a.cache, b.cache);
}

// Kept in seed formatting.
#[rustfmt::skip]
#[test]
fn frame_counts_match_duration_times_fps() {
    let scenario = quick(video::stationary());
    let config = PipelineConfig::calibrated(&scenario, 27);
    let report = run_summary(&scenario, &config, SystemVariant::Full, 27);
    assert_eq!(report.frames, 100, "10 s at 10 fps on one device");
    let multi = multi::museum(4).with_duration(SimDuration::from_secs(5));
    let report = run_summary(&multi, &PipelineConfig::calibrated(&multi, 27), SystemVariant::Full, 27);
    assert_eq!(report.frames, 200, "5 s at 10 fps on four devices");
}

// Kept in seed formatting.
#[rustfmt::skip]
#[test]
fn lookup_and_stats_invariants_hold_end_to_end() {
    let scenario = quick(video::walking_tour());
    let config = PipelineConfig::calibrated(&scenario, 28);
    let report = run_summary(&scenario, &config, SystemVariant::Full, 28);
    // Cache arithmetic: every lookup is a hit or a categorized miss.
    assert_eq!(report.cache.lookups, report.cache.hits + report.cache.misses());
    // Path counts sum to frames.
    assert_eq!(report.path_counts.iter().sum::<u64>() as usize, report.frames);
    // Latency percentiles are ordered.
    let s = &report.latency_ms;
    assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
}
