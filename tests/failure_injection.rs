//! Failure injection: the system must degrade gracefully, never
//! catastrophically, when components misbehave.

use approx_caching::inertial::MotionProfile;
use approx_caching::network::{FaultConfig, LinkSpec, ResilienceConfig};
use approx_caching::runtime::{SimDuration, TracePath};
use approx_caching::system::{
    run, Detail, PipelineConfig, ResolutionPath, RunReport, Scenario, SystemVariant,
};
use approx_caching::workload::{multi, video};

fn run_summary(
    scenario: &Scenario,
    config: &PipelineConfig,
    variant: SystemVariant,
    seed: u64,
) -> RunReport {
    run(scenario, config, variant, seed, Detail::Summary)
        .expect("valid scenario")
        .report
}

#[test]
// Exact comparison is intentional: zero peer hits yields exactly 0.0.
#[allow(clippy::float_cmp)]
fn total_radio_loss_degrades_to_local_only() {
    // A link that drops everything: peer hits must vanish, but the system
    // must still beat the no-cache baseline on local reuse alone.
    let scenario = multi::museum(6).with_duration(SimDuration::from_secs(8));
    let mut config = PipelineConfig::calibrated(&scenario, 41);
    config.peer.as_mut().expect("peers configured").link = LinkSpec {
        loss_prob: 1.0,
        ..LinkSpec::wifi_direct()
    };
    let report = run_summary(&scenario, &config, SystemVariant::Full, 41);
    assert_eq!(
        report.path_fraction(ResolutionPath::PeerCache),
        0.0,
        "no peer hits over a dead radio"
    );
    let baseline = run_summary(&scenario, &config, SystemVariant::NoCache, 41);
    assert!(report.latency_ms.mean < baseline.latency_ms.mean / 2.0);
    // Queries were attempted and lost — they must be accounted.
    assert!(report.network.messages_lost > 0);
    assert_eq!(report.network.messages_delivered, 0);
}

#[test]
fn slow_radio_does_not_make_full_system_worse_than_local() {
    // Peer queries over a BLE-class link cost tens of ms; sequential
    // querying must not blow past the DNN's own latency on miss-heavy
    // streams. We tolerate a small regression but not a blowup.
    let scenario = multi::museum(6).with_duration(SimDuration::from_secs(8));
    let mut config = PipelineConfig::calibrated(&scenario, 42);
    config.peer.as_mut().expect("peers configured").link = LinkSpec::ble();
    let full = run_summary(&scenario, &config, SystemVariant::Full, 42);
    let local = run_summary(&scenario, &config, SystemVariant::NoPeer, 42);
    assert!(
        full.latency_ms.mean < local.latency_ms.mean * 1.5,
        "BLE peers made things much worse: {} vs {}",
        full.latency_ms.mean,
        local.latency_ms.mean
    );
}

// Kept in seed formatting.
#[rustfmt::skip]
#[test]
fn tiny_cache_still_works_correctly() {
    // Capacity 1: constant eviction, but never a crash and never a wrong
    // invariant (hit+miss counts etc.).
    let scenario = video::slow_pan().with_duration(SimDuration::from_secs(8));
    let mut config = PipelineConfig::calibrated(&scenario, 43);
    config.cache = reuse::CacheConfig::new(1)
        .with_aknn(config.cache.aknn)
        .with_admission(config.cache.admission);
    let report = run_summary(&scenario, &config, SystemVariant::Full, 43);
    assert_eq!(report.cache.lookups, report.cache.hits + report.cache.misses());
    assert!(report.accuracy > 0.5);
}

#[test]
fn violent_motion_stream_never_reuses_wrongly_much() {
    // A stream that never stops moving: reuse should be low-ish and
    // accuracy must stay at baseline level (the system must not hurt).
    let scenario = Scenario::single_device(MotionProfile::TurnAndLook {
        dwell_secs: 0.2,
        turn_deg: 170.0,
    })
    .with_name("whiplash")
    .with_duration(SimDuration::from_secs(8));
    let config = PipelineConfig::calibrated(&scenario, 44);
    let full = run_summary(&scenario, &config, SystemVariant::Full, 44);
    let base = run_summary(&scenario, &config, SystemVariant::NoCache, 44);
    assert!(
        full.accuracy > base.accuracy - 0.1,
        "whiplash accuracy {} vs baseline {}",
        full.accuracy,
        base.accuracy
    );
}

#[test]
fn empty_imu_windows_are_tolerated() {
    // IMU slower than the camera (window can be empty): the pipeline must
    // not panic and must still function. We emulate by running a normal
    // scenario at an fps above the IMU rate.
    let mut scenario = video::stationary().with_duration(SimDuration::from_secs(4));
    scenario.fps = 30.0;
    scenario.imu_rate_hz = 20.0;
    let config = PipelineConfig::calibrated(&scenario, 45);
    let report = run_summary(&scenario, &config, SystemVariant::Full, 45);
    assert_eq!(report.frames, 120);
    assert!(report.reuse_rate() > 0.5);
}

// Kept in seed formatting.
#[rustfmt::skip]
#[test]
fn heavy_occlusion_degrades_gracefully() {
    // 30% of the time a passer-by fills the frame with something else:
    // reuse drops (cached subjects are hidden) but accuracy must track
    // the baseline — the system must not keep serving the occluded
    // subject's label while the view shows the occluder.
    let mut scenario = video::turn_and_look().with_duration(SimDuration::from_secs(10));
    scenario.scene.occlusion_fraction = 0.3;
    let config = PipelineConfig::calibrated(&scenario, 47);
    let full = run_summary(&scenario, &config, SystemVariant::Full, 47);
    let base = run_summary(&scenario, &config, SystemVariant::NoCache, 47);
    assert!(
        full.accuracy > base.accuracy - 0.15,
        "occluded full {} vs base {}",
        full.accuracy,
        base.accuracy
    );
    // Reuse stays high either way — occluders are themselves temporally
    // local (an episode spans ~7 frames), so the cache legitimately
    // serves them too. What occlusion must NOT do is poison accuracy,
    // which the assertion above covers; here we only sanity-check that
    // the system still reuses at all under heavy occlusion.
    assert!(full.reuse_rate() > 0.5, "reuse collapsed: {}", full.reuse_rate());
}

#[test]
fn adversarially_low_confidence_model_cannot_poison_caches() {
    // A model whose errors exceed its correct answers (top-1 40%): the
    // confidence floor must keep cached labels clean enough that the full
    // system does not fall meaningfully below the baseline.
    let scenario = video::slow_pan().with_duration(SimDuration::from_secs(8));
    let mut config = PipelineConfig::calibrated(&scenario, 46);
    config.model = dnnsim::ModelProfile {
        top1_accuracy: 0.40,
        ..dnnsim::zoo::mobilenet_v2()
    };
    let full = run_summary(&scenario, &config, SystemVariant::Full, 46);
    let base = run_summary(&scenario, &config, SystemVariant::NoCache, 46);
    assert!(
        full.accuracy >= base.accuracy - 0.05,
        "weak-model full {} vs base {}",
        full.accuracy,
        base.accuracy
    );
}

// ---------------------------------------------------------------------------
// Injected faults (the deterministic p2pnet fault schedule, not config
// sabotage): the system must absorb radio outages, crashes and poisoned
// advertisements without ever cheating — a dark radio yields no peer
// hits — and without collapsing below the no-cache floor.
// ---------------------------------------------------------------------------

fn stormy_museum(seconds: u64) -> Scenario {
    multi::museum(6)
        .with_duration(SimDuration::from_secs(seconds))
        .with_faults(FaultConfig {
            outage_fraction: 0.3,
            outage_mean: SimDuration::from_secs(2),
            crashes_per_device_minute: 1.0,
            poison_prob: 0.05,
            ..FaultConfig::default()
        })
}

fn armed(mut config: PipelineConfig) -> PipelineConfig {
    if let Some(peer) = config.peer.as_mut() {
        peer.resilience = Some(ResilienceConfig::recommended());
    }
    config
}

#[test]
fn dark_frames_never_resolve_via_peers() {
    // The invariant the fault layer must uphold: a frame processed while
    // the device's radio is dark can never be answered from a peer cache.
    let scenario = stormy_museum(12);
    let config = armed(PipelineConfig::calibrated(&scenario, 48).with_trace_capacity(Some(16_384)));
    let result =
        run(&scenario, &config, SystemVariant::Full, 48, Detail::Full).expect("valid scenario");
    let dark: Vec<_> = result
        .traces
        .iter()
        .flatten()
        .filter(|t| t.radio_dark)
        .collect();
    assert!(!dark.is_empty(), "30% outage must darken some frames");
    for trace in &dark {
        assert_ne!(
            trace.path,
            TracePath::PeerHit,
            "frame at {:?} resolved via a peer while its radio was dark",
            trace.at
        );
    }
}

#[test]
fn injected_faults_degrade_gracefully_not_catastrophically() {
    // Under 30% outage, crashes and ad poisoning, the resilient full
    // system must still beat no-cache under the *same* faults, and the
    // run's counters must prove the faults actually fired.
    let scenario = stormy_museum(12);
    let config = armed(PipelineConfig::calibrated(&scenario, 49));
    let full = run_summary(&scenario, &config, SystemVariant::Full, 49);
    let base = run_summary(&scenario, &config, SystemVariant::NoCache, 49);
    assert!(
        full.latency_ms.mean < base.latency_ms.mean * 0.7,
        "resilient full {} vs no-cache {}",
        full.latency_ms.mean,
        base.latency_ms.mean
    );
    assert!(full.faults.outage_frames > 0, "outages never fired");
    assert!(full.faults.crashes > 0, "crashes never fired");
    assert!(base.faults.outage_frames > 0, "baseline dodged the storm");
}

#[test]
fn fault_injection_is_deterministic_in_seed() {
    // Same scenario + seed under heavy faults => byte-identical reports;
    // a different seed must actually move the fault episodes.
    let scenario = stormy_museum(10);
    let config = armed(PipelineConfig::calibrated(&scenario, 50));
    let a = run_summary(&scenario, &config, SystemVariant::Full, 50);
    let b = run_summary(&scenario, &config, SystemVariant::Full, 50);
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "identical seeds must replay identical faulted runs"
    );
    let c = run_summary(&scenario, &config, SystemVariant::Full, 51);
    assert_ne!(
        a.faults, c.faults,
        "a different seed must draw different fault episodes"
    );
}
