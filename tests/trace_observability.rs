//! Cross-crate checks that the per-frame decision traces agree with the
//! aggregate report: both views are derived from the same counters, so a
//! traced run must reconcile exactly with its own summary.

use approx_caching::runtime::{SimDuration, TraceGate, TraceLookup, TracePath};
use approx_caching::system::{run, Detail, PipelineConfig, ResolutionPath, SystemVariant};
use approx_caching::workload::video;

fn traced_run(
    scenario: approx_caching::system::Scenario,
    seed: u64,
) -> approx_caching::system::SimResult {
    let scenario = scenario.with_duration(SimDuration::from_secs(10));
    let config = PipelineConfig::calibrated(&scenario, seed).with_trace_capacity(Some(8192));
    run(&scenario, &config, SystemVariant::Full, seed, Detail::Full).expect("valid scenario")
}

#[test]
fn per_path_trace_counts_match_the_report() {
    for (scenario, seed) in [
        (video::stationary(), 61),
        (video::slow_pan(), 62),
        (video::turn_and_look(), 63),
    ] {
        let name = scenario.name.clone();
        let result = traced_run(scenario, seed);
        let traces: Vec<_> = result.traces.iter().flatten().collect();
        assert_eq!(
            traces.len(),
            result.report.frames,
            "{name}: every frame must be traced"
        );
        for (path, trace_path) in [
            (ResolutionPath::ImuReuse, TracePath::ImuFastPath),
            (ResolutionPath::LocalCache, TracePath::LocalHit),
            (ResolutionPath::PeerCache, TracePath::PeerHit),
            (ResolutionPath::FullInference, TracePath::Infer),
        ] {
            let idx = ResolutionPath::all()
                .iter()
                .position(|p| *p == path)
                .expect("path enumerated");
            let traced = traces.iter().filter(|t| t.path == trace_path).count();
            assert_eq!(
                traced, result.report.path_counts[idx] as usize,
                "{name}: trace count for {path} disagrees with the report"
            );
        }
    }
}

#[test]
fn traces_reconcile_with_cache_and_latency_totals() {
    let result = traced_run(video::slow_pan(), 64);
    let traces: Vec<_> = result.traces.iter().flatten().collect();

    // Local lookup outcomes in the trace must sum to the cache counters
    // in the report — both sides read the same registry.
    let hits = traces
        .iter()
        .filter(|t| matches!(t.local, TraceLookup::Hit { .. }))
        .count() as u64;
    let misses = traces
        .iter()
        .filter(|t| matches!(t.local, TraceLookup::Miss(_)))
        .count() as u64;
    assert_eq!(hits, result.report.cache.hits);
    assert_eq!(hits + misses, result.report.cache.lookups);

    // Every traced fast-path frame passed the gate and the scene check.
    for t in traces.iter().filter(|t| t.path == TracePath::ImuFastPath) {
        assert_eq!(t.gate, TraceGate::ReusePrevious);
        assert_eq!(t.scene_changed, Some(false));
    }

    // Per-frame latencies in the trace aggregate to the report's mean.
    let mean_ms = traces
        .iter()
        .map(|t| t.latency.as_millis_f64())
        .sum::<f64>()
        / traces.len() as f64;
    assert!(
        (mean_ms - result.report.latency_ms.mean).abs() < 1e-9,
        "trace mean {mean_ms} vs report mean {}",
        result.report.latency_ms.mean
    );
}

#[test]
fn fault_counters_reconcile_with_traces() {
    // Under injected faults, the per-frame trace flags and the report's
    // aggregate resilience counters are two views of the same events:
    // dark-frame traces must count exactly `outage_frames`, and
    // fallback-flagged traces exactly `peer_fallbacks`.
    let mut scenario = approx_caching::workload::multi::museum(4)
        .with_duration(SimDuration::from_secs(12))
        .with_faults(approx_caching::network::FaultConfig {
            outage_fraction: 0.3,
            outage_mean: SimDuration::from_secs(2),
            ..approx_caching::network::FaultConfig::default()
        });
    scenario.name = "museum-trace-faults".to_owned();
    let mut config = PipelineConfig::calibrated(&scenario, 65).with_trace_capacity(Some(16_384));
    if let Some(peer) = config.peer.as_mut() {
        peer.resilience = Some(approx_caching::network::ResilienceConfig::recommended());
    }
    let result =
        run(&scenario, &config, SystemVariant::Full, 65, Detail::Full).expect("valid scenario");
    let traces: Vec<_> = result.traces.iter().flatten().collect();
    assert_eq!(
        traces.len(),
        result.report.frames,
        "every frame must be traced"
    );
    let dark = traces.iter().filter(|t| t.radio_dark).count() as u64;
    let fallbacks = traces.iter().filter(|t| t.peer_fallback).count() as u64;
    assert!(dark > 0, "30% outage must darken some traced frames");
    assert_eq!(
        dark, result.report.faults.outage_frames,
        "dark-frame traces disagree with the outage counter"
    );
    assert_eq!(
        fallbacks, result.report.faults.peer_fallbacks,
        "fallback traces disagree with the fallback counter"
    );
    // A dark or fallback frame never pays peer-tier latency: its trace
    // records zero peer attempts.
    for t in traces.iter().filter(|t| t.radio_dark || t.peer_fallback) {
        assert_eq!(t.peer.attempts, 0, "dark/fallback frame queried peers");
    }
}
