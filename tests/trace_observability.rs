//! Cross-crate checks that the per-frame decision traces agree with the
//! aggregate report: both views are derived from the same counters, so a
//! traced run must reconcile exactly with its own summary.

use approx_caching::runtime::{SimDuration, TraceGate, TraceLookup, TracePath};
use approx_caching::system::{run, Detail, PipelineConfig, ResolutionPath, SystemVariant};
use approx_caching::workload::video;

fn traced_run(
    scenario: approx_caching::system::Scenario,
    seed: u64,
) -> approx_caching::system::SimResult {
    let scenario = scenario.with_duration(SimDuration::from_secs(10));
    let config = PipelineConfig::calibrated(&scenario, seed).with_trace_capacity(Some(8192));
    run(&scenario, &config, SystemVariant::Full, seed, Detail::Full).expect("valid scenario")
}

#[test]
fn per_path_trace_counts_match_the_report() {
    for (scenario, seed) in [
        (video::stationary(), 61),
        (video::slow_pan(), 62),
        (video::turn_and_look(), 63),
    ] {
        let name = scenario.name.clone();
        let result = traced_run(scenario, seed);
        let traces: Vec<_> = result.traces.iter().flatten().collect();
        assert_eq!(
            traces.len(),
            result.report.frames,
            "{name}: every frame must be traced"
        );
        for (path, trace_path) in [
            (ResolutionPath::ImuReuse, TracePath::ImuFastPath),
            (ResolutionPath::LocalCache, TracePath::LocalHit),
            (ResolutionPath::PeerCache, TracePath::PeerHit),
            (ResolutionPath::FullInference, TracePath::Infer),
        ] {
            let idx = ResolutionPath::all()
                .iter()
                .position(|p| *p == path)
                .expect("path enumerated");
            let traced = traces.iter().filter(|t| t.path == trace_path).count();
            assert_eq!(
                traced, result.report.path_counts[idx] as usize,
                "{name}: trace count for {path} disagrees with the report"
            );
        }
    }
}

#[test]
fn traces_reconcile_with_cache_and_latency_totals() {
    let result = traced_run(video::slow_pan(), 64);
    let traces: Vec<_> = result.traces.iter().flatten().collect();

    // Local lookup outcomes in the trace must sum to the cache counters
    // in the report — both sides read the same registry.
    let hits = traces
        .iter()
        .filter(|t| matches!(t.local, TraceLookup::Hit { .. }))
        .count() as u64;
    let misses = traces
        .iter()
        .filter(|t| matches!(t.local, TraceLookup::Miss(_)))
        .count() as u64;
    assert_eq!(hits, result.report.cache.hits);
    assert_eq!(hits + misses, result.report.cache.lookups);

    // Every traced fast-path frame passed the gate and the scene check.
    for t in traces.iter().filter(|t| t.path == TracePath::ImuFastPath) {
        assert_eq!(t.gate, TraceGate::ReusePrevious);
        assert_eq!(t.scene_changed, Some(false));
    }

    // Per-frame latencies in the trace aggregate to the report's mean.
    let mean_ms = traces
        .iter()
        .map(|t| t.latency.as_millis_f64())
        .sum::<f64>()
        / traces.len() as f64;
    assert!(
        (mean_ms - result.report.latency_ms.mean).abs() < 1e-9,
        "trace mean {mean_ms} vs report mean {}",
        result.report.latency_ms.mean
    );
}

#[test]
fn fault_counters_reconcile_with_traces() {
    // Under injected faults, the per-frame trace flags and the report's
    // aggregate resilience counters are two views of the same events:
    // dark-frame traces must count exactly `outage_frames`, and
    // fallback-flagged traces exactly `peer_fallbacks`.
    let mut scenario = approx_caching::workload::multi::museum(4)
        .with_duration(SimDuration::from_secs(12))
        .with_faults(approx_caching::network::FaultConfig {
            outage_fraction: 0.3,
            outage_mean: SimDuration::from_secs(2),
            ..approx_caching::network::FaultConfig::default()
        });
    scenario.name = "museum-trace-faults".to_owned();
    let mut config = PipelineConfig::calibrated(&scenario, 65).with_trace_capacity(Some(16_384));
    if let Some(peer) = config.peer.as_mut() {
        peer.resilience = Some(approx_caching::network::ResilienceConfig::recommended());
    }
    let result =
        run(&scenario, &config, SystemVariant::Full, 65, Detail::Full).expect("valid scenario");
    let traces: Vec<_> = result.traces.iter().flatten().collect();
    assert_eq!(
        traces.len(),
        result.report.frames,
        "every frame must be traced"
    );
    let dark = traces.iter().filter(|t| t.radio_dark).count() as u64;
    let fallbacks = traces.iter().filter(|t| t.peer_fallback).count() as u64;
    assert!(dark > 0, "30% outage must darken some traced frames");
    assert_eq!(
        dark, result.report.faults.outage_frames,
        "dark-frame traces disagree with the outage counter"
    );
    assert_eq!(
        fallbacks, result.report.faults.peer_fallbacks,
        "fallback traces disagree with the fallback counter"
    );
    // A dark or fallback frame never pays peer-tier latency: its trace
    // records zero peer attempts.
    for t in traces.iter().filter(|t| t.radio_dark || t.peer_fallback) {
        assert_eq!(t.peer.attempts, 0, "dark/fallback frame queried peers");
    }
}

// The four tests below are the counter-registry reconciliation sites
// the xtask census (rule T) requires: every registry field appears in at
// least one conservation assertion here or in the registry's own balance
// invariant, so a counter that drifts from the events it claims to count
// fails a test rather than silently skewing a report.

#[test]
fn cache_counters_conserve_over_insert_remove_expire() {
    use approx_caching::cache::{ApproxCache, CacheConfig, EntrySource, InsertOutcome};
    use approx_caching::keys::FeatureVector;
    use approx_caching::runtime::SimTime;

    // Drive the store directly and count the outcomes ourselves; the
    // stats block must agree event for event. The default admission
    // policy supplies all three insert outcomes: a 0.75 confidence floor
    // (rejections) and a 0.25 dedup distance (refreshes).
    let mut cache: ApproxCache<u32> = ApproxCache::new(CacheConfig::new(64));
    let t0 = SimTime::ZERO;
    let (mut inserted, mut refreshed, mut rejected) = (0u64, 0u64, 0u64);
    let mut ids = Vec::new();
    for i in 0..24u32 {
        // Keys 10 apart never dedup against each other; repeating each
        // admitted key a second time refreshes it.
        for _ in 0..2 {
            let key =
                FeatureVector::from_vec(vec![i as f32 * 10.0, 0.0, 0.0, 0.0]).expect("finite key");
            let confidence = if i % 3 == 0 { 0.5 } else { 0.9 };
            match cache.insert(key, i, confidence, EntrySource::LocalInference, t0) {
                InsertOutcome::Inserted(id) => {
                    inserted += 1;
                    ids.push(id);
                }
                InsertOutcome::Refreshed(_) => refreshed += 1,
                InsertOutcome::Rejected => rejected += 1,
            }
        }
    }
    assert!(
        inserted > 0 && refreshed > 0 && rejected > 0,
        "all outcomes exercised"
    );

    let removed = ids.iter().take(3).filter(|id| cache.remove(**id)).count() as u64;
    assert_eq!(removed, 3, "freshly inserted ids must be removable");
    let expired =
        cache.expire_older_than(t0 + SimDuration::from_secs(100), SimDuration::from_secs(1)) as u64;
    assert_eq!(expired, inserted - removed, "everything left expires");

    let stats = cache.stats();
    assert_eq!(
        stats.inserts, inserted,
        "inserts counter vs observed outcomes"
    );
    assert_eq!(
        stats.refreshes, refreshed,
        "refreshes counter vs observed outcomes"
    );
    assert_eq!(
        stats.rejected, rejected,
        "rejected counter vs observed outcomes"
    );
    assert_eq!(
        stats.removals, removed,
        "removals counter vs successful removes"
    );
    assert_eq!(
        stats.expirations, expired,
        "expirations counter vs sweep return"
    );
}

#[test]
fn transport_counters_conserve_sent_against_outcomes() {
    use approx_caching::network::{LinkSpec, Transport};
    use approx_caching::runtime::SimRng;

    // Every message handed to the link is either delivered or lost —
    // the counters must partition exactly, and bytes follow sends.
    let mut transport = Transport::new(LinkSpec::ble());
    let mut rng = SimRng::seed(97).split("transport-conservation");
    const MESSAGES: u64 = 400;
    const BYTES: usize = 180;
    let (mut delivered, mut lost) = (0u64, 0u64);
    for _ in 0..MESSAGES {
        match transport.send_one_way(BYTES, &mut rng) {
            Some(_) => delivered += 1,
            None => lost += 1,
        }
    }
    let counters = transport.counters();
    assert_eq!(counters.messages_sent, MESSAGES);
    assert_eq!(counters.bytes_sent, MESSAGES * BYTES as u64);
    assert_eq!(counters.messages_delivered, delivered);
    assert_eq!(counters.messages_lost, lost);
    assert_eq!(
        counters.messages_sent,
        counters.messages_delivered + counters.messages_lost,
        "sent must partition into delivered + lost"
    );
    assert!(lost > 0, "3% BLE loss must drop some of 400 messages");
}

#[test]
fn resilience_counters_reconcile_with_breaker_and_merge() {
    use approx_caching::network::{BreakerConfig, CircuitBreaker, ResilienceCounters};
    use approx_caching::runtime::SimTime;

    // Drive a breaker through every transition: threshold failures open
    // it (quarantine), queries while open are suppressed (skips), the
    // lapsed quarantine grants one probe (reprobe), and a failed probe
    // re-opens it.
    let mut breaker = CircuitBreaker::new(BreakerConfig::default());
    let t0 = SimTime::ZERO;
    for _ in 0..3 {
        assert!(breaker.allows(7, t0));
        breaker.record_failure(7, t0);
    }
    assert!(!breaker.allows(7, t0), "freshly opened breaker suppresses");
    let later = t0 + SimDuration::from_secs(3);
    assert!(breaker.allows(7, later), "lapsed quarantine grants a probe");
    breaker.record_failure(7, later);
    assert_eq!(breaker.quarantines(), 2);
    assert_eq!(breaker.reprobes(), 1);
    assert_eq!(breaker.suppressed(), 1);

    // `record_breaker` folds the lifetime totals into the registry 1:1.
    let mut folded = ResilienceCounters::default();
    folded.record_breaker(&breaker);
    assert_eq!(folded.quarantines, breaker.quarantines());
    assert_eq!(folded.reprobes, breaker.reprobes());
    assert_eq!(folded.breaker_skips, breaker.suppressed());

    // `merge` must be linear in every field: folding one block twice
    // doubles each counter, so a field skipped by merge fails here.
    let mut unit = ResilienceCounters::default();
    unit.record_outage_frame();
    unit.record_crash();
    unit.record_poisoned_ad();
    unit.record_ad_retries(3);
    unit.record_ad_abandoned();
    unit.record_peer_fallback();
    unit.merge(&folded);
    let mut doubled = ResilienceCounters::default();
    doubled.merge(&unit);
    doubled.merge(&unit);
    assert_eq!(doubled.outage_frames, 2 * unit.outage_frames);
    assert_eq!(doubled.crashes, 2 * unit.crashes);
    assert_eq!(doubled.poisoned_ads, 2 * unit.poisoned_ads);
    assert_eq!(doubled.ad_retries, 2 * unit.ad_retries);
    assert_eq!(doubled.ad_abandoned, 2 * unit.ad_abandoned);
    assert_eq!(doubled.quarantines, 2 * unit.quarantines);
    assert_eq!(doubled.reprobes, 2 * unit.reprobes);
    assert_eq!(doubled.breaker_skips, 2 * unit.breaker_skips);
    assert_eq!(doubled.peer_fallbacks, 2 * unit.peer_fallbacks);
}

#[test]
fn edge_counters_conserve_across_the_wan_exchange() {
    use approx_caching::system::EdgeConfig;
    use approx_caching::workload::multi;

    // An edge-assisted run without the peer tier, so every remote answer
    // flows through the edge counters (mirrors the R-22 claim setup).
    let scenario = multi::museum(4).with_duration(SimDuration::from_secs(8));
    let mut config = PipelineConfig::calibrated(&scenario, 77);
    config.edge = Some(EdgeConfig::default());
    let result = run(
        &scenario,
        &config,
        SystemVariant::NoPeer,
        77,
        Detail::Summary,
    )
    .expect("valid scenario");
    let edge = result.report.edge;

    assert!(edge.queries_sent > 0, "the edge tier must see traffic");
    // Losses are modelled on the reply leg, so every sent lookup reaches
    // the server, and a device can only adopt a hit the server counted.
    assert_eq!(edge.lookups, edge.queries_sent);
    assert!(edge.hits <= edge.lookups, "a hit is a processed lookup");
    assert!(
        edge.hits_adopted <= edge.hits,
        "adoption needs a delivered hit"
    );
    assert!(
        edge.query_timeouts <= edge.queries_sent,
        "a timeout is a sent exchange the WAN lost"
    );
    assert!(edge.reconciles(), "the documented inequality chain holds");
    // The sim sends one frame per batch and never fills the default
    // 4096-deep queue, so accepted batches and frames balance exactly.
    assert_eq!(edge.overloads, 0);
    assert_eq!(
        edge.batches,
        edge.lookups + edge.inserts + edge.gossip_entries,
        "every accepted single-frame batch is one processed frame"
    );
}
