//! The unit newtypes (`Millis`/`Micros`/`Millijoules`) must be
//! numerically and serially indistinguishable from the raw `f64`s they
//! replaced: golden reports under `results/` pin the serialized form,
//! and property tests pin the arithmetic bit-for-bit.

use approx_caching::runtime::{Micros, Millijoules, Millis};
use approx_caching::system::RunReport;
use proptest::prelude::*;

fn golden(name: &str) -> (RunReport, serde_json::Value) {
    let raw = std::fs::read_to_string(format!("results/{name}-full.json"))
        .unwrap_or_else(|e| panic!("reading results/{name}-full.json: {e}"));
    let value = serde_json::from_str(&raw).expect("golden parses as JSON");
    let report = serde_json::from_str(&raw).expect("golden parses as RunReport");
    (report, value)
}

const GOLDENS: [&str; 5] = [
    "stationary",
    "slow-pan",
    "turn-and-look",
    "walking-tour",
    "museum-x6",
];

/// Deserialize → reserialize must reproduce every golden report
/// value-for-value: the `#[serde(transparent)]` newtypes may not change
/// a single number or key relative to the pre-newtype encoding.
#[test]
fn golden_reports_reserialize_value_identical() {
    for name in GOLDENS {
        let (report, original) = golden(name);
        let back = serde_json::to_value(&report).expect("report reserializes");
        assert_eq!(original, back, "{name}: re-serialization drifted");
    }
}

/// Spot-check that a newtype field carries the exact golden magnitude —
/// bit-for-bit the f64 in the file, not a rounded or rescaled one.
#[test]
// Exact comparison is intentional: the golden value must survive untouched.
#[allow(clippy::float_cmp)]
fn golden_energy_magnitude_is_bit_exact() {
    let (report, value) = golden("stationary");
    let raw = value["mean_energy_mj"].as_f64().expect("energy present");
    assert_eq!(report.mean_energy.value().to_bits(), raw.to_bits());
    assert_eq!(report.mean_energy, Millijoules::new(raw));
}

proptest! {
    /// Millis -> Micros -> Millis performs exactly the raw-f64
    /// computation `(x * 1e3) / 1e3` — same rounding, same bits.
    #[test]
    fn millis_micros_round_trip_matches_raw_f64(x in -1e9f64..1e9) {
        let via_newtype = Millis::from(Micros::from(Millis::new(x))).value();
        let via_raw = (x * 1e3) / 1e3;
        prop_assert_eq!(via_newtype.to_bits(), via_raw.to_bits());
    }

    /// Summing Millijoules is exactly the left fold over the raw f64s:
    /// the newtype adds no reordering and no extra rounding.
    #[test]
    fn millijoule_sum_matches_raw_fold(
        xs in proptest::collection::vec(0.0f64..1e6, 0..64),
    ) {
        let via_newtype: Millijoules = xs.iter().map(|&x| Millijoules::new(x)).sum();
        let via_raw = xs.iter().fold(0.0f64, |acc, &x| acc + x);
        prop_assert_eq!(via_newtype.value().to_bits(), via_raw.to_bits());
    }

    /// Serde stays transparent for any finite magnitude: the newtype
    /// serializes to exactly what the raw f64 would.
    #[test]
    fn serde_matches_raw_f64(x in -1e12f64..1e12) {
        let newtype = serde_json::to_string(&Millis::new(x)).expect("serializes");
        let raw = serde_json::to_string(&x).expect("serializes");
        prop_assert_eq!(newtype, raw);
    }
}
