//! App restart: mobile apps are killed and relaunched constantly, and an
//! in-memory cache dies with the process. This example snapshots the
//! cache to JSON on "pause" and restores it on "resume", comparing a warm
//! restart against a cold one — the persistence extension on top of the
//! paper's in-memory design.
//!
//! ```sh
//! cargo run --release --example app_restart
//! ```

use approx_caching::cache::CacheSnapshot;
use approx_caching::inertial::{ImuSynthesizer, MotionProfile, MotionTrace};
use approx_caching::runtime::{SimDuration, SimRng, SimTime};
use approx_caching::system::{
    Device, DeviceBuilder, DeviceId, PipelineConfig, ResolutionPath, SystemVariant,
};
use approx_caching::vision::{ClassUniverse, FrameRenderer, SceneConfig, World};

/// Runs one 15-second session, returning the device (with its cache) and
/// how many frames needed full inference.
fn run_session(
    device: &mut Device,
    world: &World,
    renderer: &FrameRenderer,
    trace: &MotionTrace,
    imu: &[approx_caching::inertial::ImuSample],
    rng: &mut SimRng,
) -> usize {
    let mut inferences = 0;
    let mut prev = SimTime::ZERO;
    for i in 1..=150u64 {
        let now = SimTime::from_millis(i * 100);
        let pose = trace.pose_at(now);
        let frame = renderer.render(world, &pose, now, rng);
        let start = ((prev.as_millis() / 10) as usize + 1).min(imu.len());
        let end = ((now.as_millis() / 10) as usize + 1).min(imu.len());
        let outcome = device.process_frame(&frame, &imu[start..end], &[], now);
        if outcome.path == ResolutionPath::FullInference {
            inferences += 1;
        }
        prev = now;
    }
    inferences
}

fn main() {
    let seed = 17;
    let root = SimRng::seed(seed);
    let scene = SceneConfig::default();
    let mut world_rng = root.split("world");
    let universe = ClassUniverse::generate(&scene, &mut world_rng);
    let world = World::generate(&universe, &scene, &mut world_rng);
    let renderer = FrameRenderer::new(&scene);

    // The same exhibit-inspection motion for every session.
    let mut motion_rng = root.split("motion");
    let trace = MotionTrace::generate(
        MotionProfile::TurnAndLook {
            dwell_secs: 3.0,
            turn_deg: 45.0,
        },
        SimDuration::from_secs(15),
        100.0,
        &mut motion_rng,
    );
    let imu = ImuSynthesizer::default().synthesize(&trace, &mut motion_rng);
    let config = PipelineConfig::new().with_peer(None);

    // Session 1: cold start.
    let mut first = DeviceBuilder::new(DeviceId(0), &config, &universe, 256, seed)
        .variant(SystemVariant::Full)
        .build();
    let mut rng = root.split("frames-1");
    let cold_inferences = run_session(&mut first, &world, &renderer, &trace, &imu, &mut rng);

    // "App paused": snapshot the cache to JSON (what would go to disk).
    let snapshot = first.cache().snapshot(SimTime::from_secs(15));
    let json = snapshot.to_json().expect("snapshot serializes");
    println!(
        "session 1 (cold): {cold_inferences} inferences; snapshot of {} entries = {} bytes of JSON",
        snapshot.len(),
        json.len()
    );

    // "App relaunched": a fresh process — and a fresh device — restores.
    let parsed: CacheSnapshot<approx_caching::vision::ClassId> =
        CacheSnapshot::from_json(&json).expect("snapshot parses");
    let mut warm = DeviceBuilder::new(DeviceId(0), &config, &universe, 256, seed)
        .variant(SystemVariant::Full)
        .build();
    let restored = warm.cache().restore(&parsed, SimTime::ZERO);
    let mut rng = root.split("frames-1"); // identical second session
    let warm_inferences = run_session(&mut warm, &world, &renderer, &trace, &imu, &mut rng);

    // Control: the same second session without restoring.
    let mut cold2 = DeviceBuilder::new(DeviceId(0), &config, &universe, 256, seed)
        .variant(SystemVariant::Full)
        .build();
    let mut rng = root.split("frames-1");
    let cold2_inferences = run_session(&mut cold2, &world, &renderer, &trace, &imu, &mut rng);

    println!("session 2 with restored cache ({restored} entries): {warm_inferences} inferences");
    println!("session 2 cold (control):                       {cold2_inferences} inferences");
    println!(
        "warm restart avoided {} of {} cold-start inferences",
        cold2_inferences - warm_inferences,
        cold2_inferences
    );
    assert!(warm_inferences < cold2_inferences, "restoration must help");
}
