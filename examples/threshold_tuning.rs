//! Threshold tuning: sweep the A-kNN distance threshold on a slow pan and
//! watch the reuse/accuracy trade-off — the knob every deployment of an
//! approximate cache has to set. Also demonstrates the built-in calibrator
//! landing in the sweet spot.
//!
//! ```sh
//! cargo run --release --example threshold_tuning
//! ```

use approx_caching::runtime::table::{fnum, fpct, Table};
use approx_caching::runtime::SimDuration;
use approx_caching::search::AknnConfig;
use approx_caching::system::{run, Detail, PipelineConfig, SystemVariant};
use approx_caching::workload::{sweep, video};

fn main() {
    let seed = 5;
    let scenario = video::slow_pan().with_duration(SimDuration::from_secs(20));
    let calibrated = PipelineConfig::calibrated(&scenario, seed);
    let calibrated_threshold = calibrated.cache.aknn.distance_threshold;

    let mut table = Table::new(vec!["threshold", "reuse", "accuracy", "mean_ms"]);
    for multiplier in sweep::linear_sweep(0.25, 2.0, 8) {
        let threshold = calibrated_threshold * multiplier;
        let config = calibrated
            .clone()
            .with_cache(calibrated.cache.clone().with_aknn(AknnConfig {
                distance_threshold: threshold,
                ..calibrated.cache.aknn
            }));
        let report = run(
            &scenario,
            &config,
            SystemVariant::Full,
            seed,
            Detail::Summary,
        )
        .expect("valid scenario")
        .report;
        table.row(vec![
            fnum(threshold, 2),
            fpct(report.reuse_rate()),
            fpct(report.accuracy),
            fnum(report.latency_ms.mean, 2),
        ]);
    }
    println!("{table}");
    println!(
        "calibrator chose {:.2}: tight thresholds waste reuse, loose ones serve\n\
         stale or cross-class labels — the sweep shows both cliffs.",
        calibrated_threshold
    );
}
