//! Drive assist: a dash-mounted phone recognizing roadside objects at
//! vehicle speed, with a heavyweight model (ResNet-50). An instructive
//! edge case for inertial gating: constant velocity is invisible to a
//! gyroscope, so the fast path reuses aggressively and the bounded reuse
//! age is what catches the drifting scene.
//!
//! ```sh
//! cargo run --release --example drive_assist
//! ```

use approx_caching::inertial::MotionProfile;
use approx_caching::inference::zoo;
use approx_caching::runtime::table::{fnum, fpct, Table};
use approx_caching::runtime::SimDuration;
use approx_caching::system::{run, Detail, PipelineConfig, Scenario, SystemVariant};
use approx_caching::vision::SceneConfig;

fn main() {
    let seed = 11;
    let scenario = Scenario::single_device(MotionProfile::Vehicle { speed_mps: 12.0 })
        .with_name("drive-assist")
        .with_duration(SimDuration::from_secs(30))
        .with_scene(SceneConfig {
            // A long roadside corridor of signs and storefronts.
            num_objects: 150,
            world_extent: 300.0,
            max_view_distance: 40.0,
            ..SceneConfig::default()
        });
    let config = PipelineConfig::calibrated(&scenario, seed)
        .with_model(zoo::resnet50())
        .with_peer(None); // a lone car: no peers to ask

    println!("dash-mounted phone at 12 m/s running {}\n", config.model);

    let mut table = Table::new(vec!["system", "mean_ms", "p99_ms", "accuracy", "reuse"]);
    for variant in [SystemVariant::NoCache, SystemVariant::LocalApprox] {
        let report = run(&scenario, &config, variant, seed, Detail::Summary)
            .expect("valid scenario")
            .report;
        table.row(vec![
            variant.to_string(),
            fnum(report.latency_ms.mean, 1),
            fnum(report.latency_ms.p99, 1),
            fpct(report.accuracy),
            fpct(report.reuse_rate()),
        ]);
    }
    println!("{table}");
    println!("a car at constant speed is gyro-quiet, so the inertial gate reuses");
    println!("aggressively even though the scene drifts — the bounded reuse age");
    println!(
        "(revalidation every {} ms) is what keeps stale labels in check,",
        config.gate.max_reuse_age.as_millis()
    );
    println!("visible here as the gap between mean and p99 latency.");
}
