//! Record & replay: freeze one device's sensory stream (frames + IMU) and
//! replay the identical stimulus against different cache policies — the
//! fair way to A/B test configuration changes, and the basis for
//! regression fixtures.
//!
//! ```sh
//! cargo run --release --example record_replay
//! ```

use approx_caching::cache::EvictionPolicy;
use approx_caching::inertial::MotionProfile;
use approx_caching::runtime::table::{fpct, Table};
use approx_caching::runtime::SimDuration;
use approx_caching::search::AknnConfig;
use approx_caching::system::{
    DeviceBuilder, DeviceId, PipelineConfig, ResolutionPath, SystemVariant,
};
use approx_caching::vision::SceneConfig;
use approx_caching::workload::StreamRecording;

fn main() {
    let seed = 23;
    // Freeze a 30 s exhibit-inspection stream once.
    let recording = StreamRecording::record(
        MotionProfile::TurnAndLook {
            dwell_secs: 3.0,
            turn_deg: 45.0,
        },
        SceneConfig::default(),
        SimDuration::from_secs(30),
        seed,
    );
    let universe = recording.universe();
    println!(
        "recorded {} frames + {} IMU samples ({} KiB as JSON)\n",
        recording.len(),
        recording.imu.len(),
        recording.to_json().map(|j| j.len() / 1024).unwrap_or(0)
    );

    // Calibrate once for the recorded scene.
    let base = {
        let mut config = PipelineConfig::new().with_peer(None);
        let threshold = approx_caching::system::config::calibrate_threshold_for(
            &recording.scene,
            config.key_dim,
            config.projection_seed,
            seed,
        );
        config.cache = config.cache.clone().with_aknn(AknnConfig {
            distance_threshold: threshold,
            ..AknnConfig::default()
        });
        config
    };

    // A/B/C: identical stimulus, different configurations.
    let candidates: Vec<(&str, PipelineConfig)> = vec![
        ("baseline (LRU, calibrated)", base.clone()),
        (
            "LFU eviction",
            base.clone().with_eviction(EvictionPolicy::Lfu),
        ),
        (
            "half threshold",
            base.clone()
                .with_cache(base.cache.clone().with_aknn(AknnConfig {
                    distance_threshold: base.cache.aknn.distance_threshold * 0.5,
                    ..base.cache.aknn
                })),
        ),
    ];

    let mut table = Table::new(vec!["configuration", "reuse", "accuracy", "inferences"]);
    for (label, config) in candidates {
        let mut device = DeviceBuilder::new(
            DeviceId(0),
            &config,
            &universe,
            recording.scene.descriptor_dim,
            seed,
        )
        .variant(SystemVariant::Full)
        .build();
        let outcomes = recording.replay_on(&mut device);
        let inferences = outcomes
            .iter()
            .filter(|o| o.path == ResolutionPath::FullInference)
            .count();
        let correct = outcomes.iter().filter(|o| o.is_correct()).count();
        table.row(vec![
            label.into(),
            fpct(1.0 - inferences as f64 / outcomes.len() as f64),
            fpct(correct as f64 / outcomes.len() as f64),
            inferences.to_string(),
        ]);
    }
    println!("{table}");
    println!("every row saw byte-identical frames and IMU samples — differences are");
    println!("purely the configuration's doing, not workload noise.");
}
