//! Quickstart: run the full system against the always-infer baseline on a
//! stationary camera and print what approximate caching buys.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use approx_caching::runtime::SimDuration;
use approx_caching::system::{run, Detail, PipelineConfig, ResolutionPath, SystemVariant};
use approx_caching::workload::video;

fn main() {
    let seed = 42;

    // A phone propped on a stand, recognizing whatever it sees, 30 s at
    // 10 fps.
    let scenario = video::stationary().with_duration(SimDuration::from_secs(30));

    // Calibrate the cache's distance threshold for this scene, exactly as
    // a deployment would with a small labelled warm-up set.
    let config = PipelineConfig::calibrated(&scenario, seed);
    println!("model: {} on a {} phone", config.model, config.device_class);
    println!(
        "calibrated A-kNN distance threshold: {:.2}\n",
        config.cache.aknn.distance_threshold
    );

    let baseline = run(
        &scenario,
        &config,
        SystemVariant::NoCache,
        seed,
        Detail::Summary,
    )
    .expect("valid scenario")
    .report;
    let full = run(
        &scenario,
        &config,
        SystemVariant::Full,
        seed,
        Detail::Summary,
    )
    .expect("valid scenario")
    .report;

    println!("{baseline}");
    println!("{full}");

    println!(
        "average latency reduction: {:.1}%  (paper claims up to 94%)",
        full.latency_reduction_vs(&baseline) * 100.0
    );
    println!(
        "accuracy delta: {:+.1} points  (paper claims minimal loss)",
        full.accuracy_delta_vs(&baseline) * 100.0
    );
    println!(
        "frames answered without the DNN: {:.1}% (imu {:.1}%, cache {:.1}%)",
        full.reuse_rate() * 100.0,
        full.path_fraction(ResolutionPath::ImuReuse) * 100.0,
        full.path_fraction(ResolutionPath::LocalCache) * 100.0
    );
}
