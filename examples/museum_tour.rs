//! Museum tour: eight visitors in one gallery, sharing recognition results
//! over WiFi-Direct with no infrastructure. Shows how peer collaboration
//! warms cold caches — the third mechanism of the paper.
//!
//! ```sh
//! cargo run --release --example museum_tour
//! ```

use approx_caching::runtime::table::{fnum, fpct, Table};
use approx_caching::runtime::SimDuration;
use approx_caching::system::{run, Detail, PipelineConfig, ResolutionPath, SystemVariant};
use approx_caching::workload::multi;

fn main() {
    let seed = 7;
    let scenario = multi::museum(8).with_duration(SimDuration::from_secs(30));
    let config = PipelineConfig::calibrated(&scenario, seed);

    println!(
        "eight visitors, one gallery, {} exhibits\n",
        scenario.scene.num_objects
    );

    let mut table = Table::new(vec![
        "system", "mean_ms", "p95_ms", "accuracy", "imu", "local", "peer", "dnn", "net_kB",
    ]);
    for variant in [
        SystemVariant::NoCache,
        SystemVariant::LocalApprox,
        SystemVariant::Full,
    ] {
        let report = run(&scenario, &config, variant, seed, Detail::Summary)
            .expect("valid scenario")
            .report;
        table.row(vec![
            variant.to_string(),
            fnum(report.latency_ms.mean, 2),
            fnum(report.latency_ms.p95, 2),
            fpct(report.accuracy),
            fpct(report.path_fraction(ResolutionPath::ImuReuse)),
            fpct(report.path_fraction(ResolutionPath::LocalCache)),
            fpct(report.path_fraction(ResolutionPath::PeerCache)),
            fpct(report.path_fraction(ResolutionPath::FullInference)),
            fnum(report.network.bytes_sent as f64 / 1e3, 1),
        ]);
    }
    println!("{table}");
    println!("local-approx = same system without peers; the peer column is what");
    println!("infrastructure-less collaboration adds on top of local reuse.");
}
