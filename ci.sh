#!/usr/bin/env bash
# Full local CI: formatting, lints, tests, and the headline-claim
# regression gate. Mirrors what a reviewer runs before merging.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== xtask lint (determinism / units / counters / panic budget) =="
cargo run -q -p xtask -- lint

echo "== cargo test (tier-1: root integration suite) =="
cargo test -q

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== verify_claims (headline regression gate) =="
EXPERIMENT_SECONDS="${EXPERIMENT_SECONDS:-10}" cargo run -q -p bench --bin verify_claims

echo "== perf_smoke (informational: hot-path timings -> BENCH.json) =="
# Never gates: absolute times depend on the runner; the recorded
# trajectory across PRs is the signal.
cargo run --release -q -p bench --bin perf_smoke || true

echo "CI OK"
