#!/usr/bin/env bash
# Full local CI: formatting, lints, tests, and the headline-claim
# regression gate. Mirrors what a reviewer runs before merging.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== xtask lint (structural: lock graph / seeds / allocs / counters / budget) =="
LINT_JSON="$(cargo run -q -p xtask -- lint --json)"
echo "$LINT_JSON"
# The lock-order graph must certify acyclic on every merge.
echo "$LINT_JSON" | grep -q '"acyclic": true' || {
    echo "lock-order graph is NOT acyclic" >&2
    exit 1
}

echo "== cargo test (tier-1: root integration suite) =="
cargo test -q

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== verify_claims (headline regression gate) =="
EXPERIMENT_SECONDS="${EXPERIMENT_SECONDS:-10}" cargo run -q -p bench --bin verify_claims

echo "== perf_smoke (informational: hot-path timings -> BENCH.json) =="
# Never gates: absolute times depend on the runner; the recorded
# trajectory across PRs is the signal.
cargo run --release -q -p bench --bin perf_smoke || true

echo "== sweep smoke (informational: tiny grid, exercises resume) =="
# Never gates on timings; runs the built-in 2x2 smoke grid twice into a
# scratch dir so the second pass must resume every cell from disk.
SWEEP_DIR="$(mktemp -d)"
trap 'rm -rf "$SWEEP_DIR"' EXIT
cargo run --release -q -p bench --bin sweep -- --smoke "$SWEEP_DIR" || true
SWEEP_RESUME="$(cargo run --release -q -p bench --bin sweep -- --smoke "$SWEEP_DIR" || true)"
echo "$SWEEP_RESUME"
# The resume pass must not re-run any cell.
echo "$SWEEP_RESUME" | grep -q '0 ran now, 4 resumed from disk' \
    || echo "warning: sweep resume pass re-ran cells (informational)" >&2

echo "== edge smoke (informational: real TCP server round-trip) =="
# Never gates: spawns edge-server on an ephemeral port, drives one
# batched insert/lookup/gossip session through edge-client, and asserts
# a clean /shutdown.
EDGE_LOG="$SWEEP_DIR/edge-server.log"
if cargo build --release -q -p edge --bins; then
    ./target/release/edge-server --allow-shutdown >"$EDGE_LOG" &
    EDGE_PID=$!
    EDGE_ADDR=""
    for _ in $(seq 1 50); do
        EDGE_ADDR="$(sed -n 's/^listening on //p' "$EDGE_LOG")"
        [ -n "$EDGE_ADDR" ] && break
        sleep 0.1
    done
    if [ -n "$EDGE_ADDR" ]; then
        ./target/release/edge-client --addr "$EDGE_ADDR" smoke \
            || echo "warning: edge smoke round-trip failed (informational)" >&2
        ./target/release/edge-client --addr "$EDGE_ADDR" shutdown || true
        wait "$EDGE_PID" || true
        grep -q 'shut down cleanly' "$EDGE_LOG" \
            || echo "warning: edge-server did not shut down cleanly (informational)" >&2
    else
        kill "$EDGE_PID" 2>/dev/null || true
        echo "warning: edge-server never reported its address (informational)" >&2
    fi
else
    echo "warning: edge bins failed to build (informational)" >&2
fi

echo "== miri (informational: concurrent store under the interpreter) =="
# Never gates: nightly + Miri are optional on CI boxes. When present,
# interprets the sharded-store suite to catch UB the type system can't.
if command -v rustup >/dev/null 2>&1 \
    && rustup toolchain list 2>/dev/null | grep -q nightly \
    && rustup component list --toolchain nightly 2>/dev/null \
        | grep -q 'miri.*(installed)'; then
    cargo +nightly miri test -p reuse --test concurrent_store || true
else
    echo "nightly/miri not installed; skipping"
fi

echo "CI OK"
